"""Benchmarks for optimizer updates (SGD momentum, LARS trust-ratio).

LARS pays two extra norms per parameter over SGD; tracking both on the same
parameter set keeps that overhead ratio visible as the model zoo evolves.
"""

from __future__ import annotations

import numpy as np

from ..harness import register


def _model_with_grads():
    from repro.nn.models import build_model

    model = build_model("micro_resnet", num_classes=10, seed=0)
    params = model.parameters()
    rng = np.random.default_rng(0)
    for p in params:
        p.grad = rng.normal(scale=1e-3, size=p.data.shape)
    return model, params


@register(
    "sgd.step",
    area="core",
    params={"model": "micro_resnet", "momentum": 0.9, "weight_decay": 0.0005},
    repeats=30,
)
def _sgd_step():
    from repro.core import SGD

    _, params = _model_with_grads()
    opt = SGD(params)
    return lambda: opt.step(0.01)


@register(
    "lars.step",
    area="core",
    params={
        "model": "micro_resnet",
        "trust_coefficient": 0.001,
        "momentum": 0.9,
        "weight_decay": 0.0005,
    },
    repeats=30,
)
def _lars_step():
    from repro.core import LARS

    _, params = _model_with_grads()
    opt = LARS(params)
    return lambda: opt.step(0.01)
