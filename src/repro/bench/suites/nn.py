"""Benchmarks for the training hot path: im2col/col2im, Conv2D, proxy steps.

These cover exactly the kernels the PR-2 optimisations touched, so the
baseline files catch any future drift: the im2col workspace copy, the
col2im non-overlapping scatter, the 1×1 im2col-free route, and the
end-to-end proxy train steps whose wall-clock the paper's E·n/B iteration
count multiplies.
"""

from __future__ import annotations

import numpy as np

from ..harness import register

# Pinned problem sizes: micro-model scale (what CI can time reliably).
_BATCH = 32
_IMAGE = 16


def _input(n=_BATCH, c=3, s=_IMAGE, seed=0):
    return np.random.default_rng(seed).normal(size=(n, c, s, s))


@register(
    "im2col.k3s1p1",
    area="nn",
    params={"batch": _BATCH, "channels": 8, "image": _IMAGE, "kernel": 3, "stride": 1, "pad": 1},
)
def _im2col_overlapping():
    from repro.nn.layers.conv import im2col

    x = _input(c=8)
    cols, _ = im2col(x, 3, 3, 1, 1)
    return lambda: im2col(x, 3, 3, 1, 1, out=cols)


@register(
    "col2im.k3s1p1",
    area="nn",
    params={
        "batch": _BATCH,
        "channels": 8,
        "image": _IMAGE,
        "kernel": 3,
        "stride": 1,
        "pad": 1,
        "branch": "overlapping",
    },
)
def _col2im_overlapping():
    from repro.nn.layers.conv import col2im, im2col

    x = _input(c=8)
    cols, _ = im2col(x, 3, 3, 1, 1)
    return lambda: col2im(cols, x.shape, 3, 3, 1, 1)


@register(
    "col2im.k2s2p0",
    area="nn",
    params={
        "batch": _BATCH,
        "channels": 8,
        "image": _IMAGE,
        "kernel": 2,
        "stride": 2,
        "pad": 0,
        "branch": "non-overlapping",
    },
)
def _col2im_fast_branch():
    from repro.nn.layers.conv import col2im, im2col

    x = _input(c=8)
    cols, _ = im2col(x, 2, 2, 2, 0)
    return lambda: col2im(cols, x.shape, 2, 2, 2, 0)


def _conv(in_c, out_c, kernel, stride, pad, groups=1):
    from repro.nn.layers.conv import Conv2D

    return Conv2D(
        in_c,
        out_c,
        kernel,
        stride=stride,
        padding=pad,
        groups=groups,
        rng=np.random.default_rng(0),
    )


@register(
    "conv2d.fwd.k3s1p1",
    area="nn",
    params={"batch": _BATCH, "in_channels": 8, "out_channels": 16, "image": _IMAGE, "kernel": 3},
)
def _conv_fwd():
    layer = _conv(8, 16, 3, 1, 1)
    x = _input(c=8)
    return lambda: layer.forward(x)


@register(
    "conv2d.fwdbwd.k3s1p1",
    area="nn",
    params={"batch": _BATCH, "in_channels": 8, "out_channels": 16, "image": _IMAGE, "kernel": 3},
)
def _conv_fwdbwd():
    layer = _conv(8, 16, 3, 1, 1)
    x = _input(c=8)
    grad = _input(n=_BATCH, c=16, seed=1)

    def step():
        layer.forward(x)
        layer.backward(grad)

    return step


@register(
    "conv2d.fwdbwd.k1s1p0",
    area="nn",
    params={
        "batch": _BATCH,
        "in_channels": 32,
        "out_channels": 32,
        "image": _IMAGE,
        "kernel": 1,
        "route": "pointwise",
    },
)
def _conv_pointwise():
    layer = _conv(32, 32, 1, 1, 0)
    x = _input(c=32)
    grad = _input(c=32, seed=1)

    def step():
        layer.forward(x)
        layer.backward(grad)

    return step


@register(
    "conv2d.fwdbwd.k5s1p2g2",
    area="nn",
    params={
        "batch": _BATCH,
        "in_channels": 16,
        "out_channels": 32,
        "image": _IMAGE,
        "kernel": 5,
        "groups": 2,
    },
)
def _conv_grouped():
    layer = _conv(16, 32, 5, 1, 2, groups=2)
    x = _input(c=16)
    grad = _input(c=32, seed=1)

    def step():
        layer.forward(x)
        layer.backward(grad)

    return step


def _train_step(model_name: str, **kwargs):
    from repro.core import SGD
    from repro.core.trainer import Trainer
    from repro.nn.models import build_model

    model = build_model(model_name, num_classes=10, seed=0, **kwargs)
    trainer = Trainer(model, SGD(model.parameters()), 0.01)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(_BATCH, 3, _IMAGE, _IMAGE))
    y = rng.integers(0, 10, size=_BATCH)

    def step():
        with np.errstate(all="ignore"):
            trainer.train_step(x, y)

    return step


@register(
    "train_step.alexnet_proxy",
    area="nn",
    params={"model": "micro_alexnet", "batch": _BATCH, "image": _IMAGE},
    repeats=15,
)
def _alexnet_step():
    return _train_step("micro_alexnet", image_size=_IMAGE)


@register(
    "train_step.resnet_proxy",
    area="nn",
    params={"model": "micro_resnet", "batch": _BATCH, "image": _IMAGE},
    repeats=15,
)
def _resnet_step():
    return _train_step("micro_resnet")
