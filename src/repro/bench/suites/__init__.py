"""Benchmark suites, one module per area.

Importing this package registers every benchmark with
:data:`repro.bench.harness.REGISTRY`; keep each module import-cheap (heavy
setup belongs inside the registered setup callables, which only run when
the benchmark is selected).
"""

from . import cluster, comm, core, data, memory, nn, overlap  # noqa: F401

__all__ = ["nn", "core", "comm", "cluster", "data", "memory", "overlap"]
