"""Benchmarks for the static-memory subsystem: arena ops, planned steps.

The planned-vs-eager train-step pairs are the headline numbers: a planned
step runs the bitwise-identical computation out of persistent arena slots,
so the delta is pure allocator/page-fault cost.  ``plan.build`` is timed
too because the planner runs at trainer construction (it must stay cheap
enough to call per configuration).
"""

from __future__ import annotations

import numpy as np

from ..harness import register

_BATCH = 32
_IMAGE = 16


@register(
    "arena.acquire_release",
    area="memory",
    params={"shape": "32x64x16x16", "dtype": "float64"},
)
def _arena_cycle():
    from repro.nn.memory import Arena

    arena = Arena()
    shape = (_BATCH, 64, _IMAGE, _IMAGE)
    arena.release(arena.acquire(shape))  # warm the freelist

    def step():
        buf = arena.acquire(shape)
        arena.release(buf)

    return step


@register(
    "plan.build.micro_resnet",
    area="memory",
    params={"model": "micro_resnet", "batch": _BATCH, "image": _IMAGE},
    repeats=10,
)
def _plan_build():
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.nn.memory import MemoryPlan
    from repro.nn.models import build_model

    def step():
        model = build_model("micro_resnet", num_classes=10, seed=0)
        MemoryPlan.build(
            model, (3, _IMAGE, _IMAGE), _BATCH, loss=SoftmaxCrossEntropy()
        )

    return step


def _train_step(model_name: str, static: bool, **kwargs):
    from repro.core import SGD
    from repro.core.trainer import Trainer
    from repro.nn.models import build_model

    model = build_model(model_name, num_classes=10, seed=0, **kwargs)
    trainer = Trainer(
        model, SGD(model.parameters()), 0.01, static_memory=static
    )
    rng = np.random.default_rng(0)
    x = rng.normal(size=(_BATCH, 3, _IMAGE, _IMAGE))
    y = rng.integers(0, 10, size=_BATCH)

    def step():
        with np.errstate(all="ignore"):
            trainer.train_step(x, y)

    return step


@register(
    "train_step.eager.micro_resnet",
    area="memory",
    params={"model": "micro_resnet", "batch": _BATCH, "image": _IMAGE, "static_memory": False},
    repeats=15,
)
def _resnet_eager():
    return _train_step("micro_resnet", static=False)


@register(
    "train_step.planned.micro_resnet",
    area="memory",
    params={"model": "micro_resnet", "batch": _BATCH, "image": _IMAGE, "static_memory": True},
    repeats=15,
)
def _resnet_planned():
    return _train_step("micro_resnet", static=True)


@register(
    "train_step.eager.micro_alexnet",
    area="memory",
    params={"model": "micro_alexnet", "batch": _BATCH, "image": _IMAGE, "static_memory": False},
    repeats=15,
)
def _alexnet_eager():
    return _train_step("micro_alexnet", static=False, image_size=_IMAGE)


@register(
    "train_step.planned.micro_alexnet",
    area="memory",
    params={"model": "micro_alexnet", "batch": _BATCH, "image": _IMAGE, "static_memory": True},
    repeats=15,
)
def _alexnet_planned():
    return _train_step("micro_alexnet", static=True, image_size=_IMAGE)
