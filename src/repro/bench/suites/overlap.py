"""Benchmarks for the nonblocking/overlapped gradient-exchange path.

Each timed sample spins up a 4-rank thread cluster, so the numbers include
the real wall-clock synchronisation cost of the overlap machinery — request
state machines, per-bucket packing into persistent buffers, and multiple
in-flight collectives draining through the mailbox fabric.  This is the
host-side overhead budget of :class:`repro.cluster.bucketing.BucketedExchange`;
the *simulated* benefit of overlap is asserted separately by the obs-smoke
``--check-overlap-speedup`` gate and the overlap test suites.
"""

from __future__ import annotations

import numpy as np

from ..harness import register

_WORLD = 4
_ELEMENTS = 65_536
_ROUNDS = 4
_HIDDEN = [64] * 6
_BUCKET_BYTES = 1 << 14


def _model_with_grads(seed: int):
    from repro.nn.models import mlp

    model = mlp(8, _HIDDEN, 3, seed=0)
    rng = np.random.default_rng(seed)
    for p in model.parameters():
        p.grad = rng.normal(size=p.data.shape)
    return model


@register(
    "iallreduce.single",
    area="overlap",
    params={"world": _WORLD, "elements": _ELEMENTS, "rounds": _ROUNDS},
    repeats=10,
    quick_repeats=3,
)
def _iallreduce_single():
    from repro.comm.communicator import run_cluster

    def worker(comm):
        data = np.random.default_rng(comm.rank).normal(size=_ELEMENTS)
        for _ in range(_ROUNDS):
            data = comm.iallreduce(data).wait()
        return float(data[0])

    return lambda: run_cluster(_WORLD, worker)


@register(
    "iallreduce.inflight4",
    area="overlap",
    params={"world": _WORLD, "elements": _ELEMENTS // 4, "inflight": 4},
    repeats=10,
    quick_repeats=3,
)
def _iallreduce_inflight():
    from repro.comm.communicator import run_cluster

    def worker(comm):
        rng = np.random.default_rng(comm.rank)
        chunks = [rng.normal(size=_ELEMENTS // 4) for _ in range(4)]
        for _ in range(_ROUNDS):
            reqs = [comm.iallreduce(c) for c in chunks]
            chunks = [r.wait() for r in reqs]
        return float(chunks[0][0])

    return lambda: run_cluster(_WORLD, worker)


def _exchange_bench(overlap: bool):
    from repro.cluster.bucketing import BucketedExchange, BucketPlan
    from repro.comm.communicator import run_cluster

    def worker(comm):
        model = _model_with_grads(comm.rank)
        exchange = BucketedExchange(
            comm,
            BucketPlan.from_model(model, bucket_bytes=_BUCKET_BYTES),
            algorithm="tree",
            overlap=overlap,
        )
        for _ in range(_ROUNDS):
            if overlap:
                # flush path: begin_step then finish_step launches every
                # bucket back to back — the multiple-in-flight hot path
                exchange.begin_step(1.0, 0.0)
                exchange.finish_step()
            else:
                exchange.sync_blocking(1.0)
        return exchange.busy_seconds

    return lambda: run_cluster(_WORLD, worker)


_EXCHANGE_PARAMS = {
    "world": _WORLD,
    "model": f"mlp-{len(_HIDDEN)}x{_HIDDEN[0]}",
    "bucket_bytes": _BUCKET_BYTES,
    "rounds": _ROUNDS,
}


@register(
    "exchange.bucketed_blocking",
    area="overlap",
    params=dict(_EXCHANGE_PARAMS, overlap=False),
    repeats=10,
    quick_repeats=3,
)
def _exchange_blocking():
    return _exchange_bench(overlap=False)


@register(
    "exchange.overlapped",
    area="overlap",
    params=dict(_EXCHANGE_PARAMS, overlap=True),
    repeats=10,
    quick_repeats=3,
)
def _exchange_overlapped():
    return _exchange_bench(overlap=True)
