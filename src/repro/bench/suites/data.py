"""Benchmarks for input-pipeline epoch iteration.

One sample = one full epoch over a pinned synthetic dataset, covering the
shard permutation (now LRU-cached), batch slicing, and the augmentation
pipeline.  The ``none``/``heavy`` pair separates indexing cost from
per-image transform cost.
"""

from __future__ import annotations

import numpy as np

from ..harness import register

_SAMPLES = 2000
_BATCH = 64
_IMAGE = 16


def _loader(augment):
    from repro.data.loader import BatchLoader

    rng = np.random.default_rng(0)
    x = rng.normal(size=(_SAMPLES, 3, _IMAGE, _IMAGE))
    y = rng.integers(0, 10, size=_SAMPLES)
    return BatchLoader(x, y, _BATCH, augment=augment, seed=0, auto_advance=False)


def _epoch(loader):
    count = 0
    for _xb, _yb in loader:
        count += 1
    return count


_PARAMS = {"samples": _SAMPLES, "batch": _BATCH, "image": _IMAGE}


@register("loader.epoch.none", area="data", params=dict(_PARAMS, augment="none"), repeats=15)
def _epoch_plain():
    loader = _loader("none")
    return lambda: _epoch(loader)


@register("loader.epoch.heavy", area="data", params=dict(_PARAMS, augment="heavy"), repeats=15)
def _epoch_heavy():
    loader = _loader("heavy")
    return lambda: _epoch(loader)
