"""Regression gate: diff two sets of ``BENCH_<area>.json`` files.

``compare`` answers one question per benchmark: did the median slow down by
more than ``threshold``× relative to the baseline?  Medians below
``min_seconds`` are compared against the floor instead of their raw value —
sub-noise microbenchmarks (a few microseconds) would otherwise trip the
gate on scheduler jitter alone.

Benchmarks present on only one side are reported (``added``/``removed``)
but never fail the gate; the set of benchmarks is expected to grow.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass

from .schema import load_payload

__all__ = ["Comparison", "compare_payloads", "compare_dirs", "format_report"]

#: medians below this are clamped before the ratio test (seconds)
DEFAULT_MIN_SECONDS = 50e-6


@dataclass(frozen=True)
class Comparison:
    """Verdict for one benchmark name."""

    name: str
    area: str
    baseline_median_s: float | None
    new_median_s: float | None
    threshold: float

    @property
    def ratio(self) -> float | None:
        if not self.baseline_median_s or self.new_median_s is None:
            return None
        return self.new_median_s / self.baseline_median_s

    @property
    def status(self) -> str:
        if self.baseline_median_s is None:
            return "added"
        if self.new_median_s is None:
            return "removed"
        if self.new_median_s > self.threshold * self.baseline_median_s:
            return "regression"
        if self.new_median_s * self.threshold < self.baseline_median_s:
            return "improved"
        return "ok"


def compare_payloads(
    baseline: dict,
    new: dict,
    threshold: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[Comparison]:
    """Compare two same-area payloads benchmark-by-benchmark."""
    if baseline["area"] != new["area"]:
        raise ValueError(
            f"area mismatch: baseline {baseline['area']!r} vs new {new['area']!r}"
        )
    area = new["area"]
    comparisons = []
    names = sorted(set(baseline["results"]) | set(new["results"]))
    for name in names:
        base_entry = baseline["results"].get(name)
        new_entry = new["results"].get(name)
        base_median = None if base_entry is None else max(base_entry["median_s"], min_seconds)
        new_median = None if new_entry is None else max(new_entry["median_s"], min_seconds)
        comparisons.append(
            Comparison(
                name=name,
                area=area,
                baseline_median_s=base_median,
                new_median_s=new_median,
                threshold=threshold,
            )
        )
    return comparisons


def _collect(path: str) -> dict[str, str]:
    """Map area -> file path for a directory (or a single result file)."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    if not files:
        raise FileNotFoundError(f"no BENCH_*.json files under {path!r}")
    return {load_payload(f)["area"]: f for f in files}


def compare_dirs(
    baseline_path: str,
    new_path: str,
    threshold: float,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[Comparison]:
    """Compare every common area between two directories (or files).

    Areas present on only one side contribute ``added``/``removed`` entries
    for each of their benchmarks, mirroring the per-benchmark rule.
    """
    baseline_files = _collect(baseline_path)
    new_files = _collect(new_path)
    comparisons: list[Comparison] = []
    for area in sorted(set(baseline_files) | set(new_files)):
        base = baseline_files.get(area)
        new = new_files.get(area)
        if base is not None and new is not None:
            comparisons.extend(
                compare_payloads(load_payload(base), load_payload(new), threshold, min_seconds)
            )
            continue
        payload = load_payload(base or new)
        for name in sorted(payload["results"]):
            median = max(payload["results"][name]["median_s"], min_seconds)
            comparisons.append(
                Comparison(
                    name=name,
                    area=area,
                    baseline_median_s=median if base else None,
                    new_median_s=median if new else None,
                    threshold=threshold,
                )
            )
    return comparisons


def format_report(comparisons: list[Comparison]) -> str:
    """Human-readable table, regressions first."""
    order = {"regression": 0, "improved": 1, "ok": 2, "added": 3, "removed": 4}
    rows = sorted(comparisons, key=lambda c: (order[c.status], c.name))
    lines = [
        f"{'benchmark':<36}{'baseline':>12}{'new':>12}{'ratio':>8}  status",
        "-" * 76,
    ]
    for c in rows:
        base = "-" if c.baseline_median_s is None else f"{c.baseline_median_s * 1e3:9.3f}ms"
        new = "-" if c.new_median_s is None else f"{c.new_median_s * 1e3:9.3f}ms"
        ratio = "-" if c.ratio is None else f"{c.ratio:6.2f}x"
        lines.append(f"{c.name:<36}{base:>12}{new:>12}{ratio:>8}  {c.status}")
    n_reg = sum(1 for c in comparisons if c.status == "regression")
    n_imp = sum(1 for c in comparisons if c.status == "improved")
    lines.append("-" * 76)
    lines.append(f"{len(comparisons)} compared, {n_reg} regression(s), {n_imp} improved")
    return "\n".join(lines)
