"""``repro.comm`` — simulated MPI substrate.

A thread-per-rank message-passing fabric with α-β cost accounting and
mpi4py-style communicators; the cluster-scale experiments run on this.
"""

from .clock import LogicalClock
from .collectives import (
    ALLREDUCE_ALGORITHMS,
    allgather_ring,
    allreduce_cost,
    allreduce_message_count,
    allreduce_rhd,
    allreduce_ring,
    allreduce_tree,
    barrier_dissemination,
    bcast_cost,
    bcast_tree,
    reduce_cost,
    reduce_tree,
)
from .communicator import DEFAULT_RECV_TIMEOUT, Communicator, run_cluster
from .detector import FailureDetector, PeerStatus
from .errors import (
    ClusterHalted,
    FabricTimeout,
    PeerDeadError,
    RankKilled,
    RetransmitExhausted,
)
from .fabric import Envelope, FabricStats, NetworkProfile, SimulatedFabric
from .hierarchical import allreduce_hierarchical, hierarchical_cost, node_groups
from .nonblocking import AllreduceRequest, RecvRequest, Request, SendRequest
from .reliable import RetransmitPolicy

__all__ = [
    "LogicalClock",
    "NetworkProfile",
    "SimulatedFabric",
    "FabricStats",
    "Envelope",
    "Communicator",
    "run_cluster",
    "DEFAULT_RECV_TIMEOUT",
    "FabricTimeout",
    "PeerDeadError",
    "ClusterHalted",
    "RetransmitExhausted",
    "RankKilled",
    "FailureDetector",
    "PeerStatus",
    "RetransmitPolicy",
    "Request",
    "SendRequest",
    "RecvRequest",
    "AllreduceRequest",
    "ALLREDUCE_ALGORITHMS",
    "allreduce_tree",
    "allreduce_ring",
    "allreduce_rhd",
    "allgather_ring",
    "bcast_tree",
    "reduce_tree",
    "barrier_dissemination",
    "allreduce_hierarchical",
    "hierarchical_cost",
    "node_groups",
    "allreduce_cost",
    "allreduce_message_count",
    "bcast_cost",
    "reduce_cost",
]
