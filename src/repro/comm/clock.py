"""Per-rank logical clocks for the simulated cluster.

Real wall-clock time on the simulating machine is irrelevant (one laptop
plays 2048 KNLs); instead every rank carries a logical clock measured in
simulated seconds.  Local work advances the clock explicitly; receiving a
message merges the sender's completion time (Lamport-style ``max``), so the
final clock of any rank is the length of its critical path — exactly the
quantity the paper's α-β analysis (Table 2) predicts.
"""

from __future__ import annotations

import threading

__all__ = ["LogicalClock"]


class LogicalClock:
    """Monotone simulated-time counter for one rank.

    Thread-safe: the owning rank advances it, and the fabric merges arrival
    times from sender threads.
    """

    def __init__(self, start: float = 0.0):
        self._time = float(start)
        self._lock = threading.Lock()

    @property
    def time(self) -> float:
        with self._lock:
            return self._time

    def advance(self, dt: float) -> float:
        """Add ``dt`` simulated seconds of local work; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        with self._lock:
            self._time += dt
            return self._time

    def merge(self, t: float) -> float:
        """Lamport merge: fast-forward to ``t`` if it is in the future."""
        with self._lock:
            if t > self._time:
                self._time = t
            return self._time

    def reset(self, t: float = 0.0) -> None:
        with self._lock:
            self._time = float(t)
