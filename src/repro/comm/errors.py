"""Typed failure exceptions for the simulated communication stack.

The fault-tolerance machinery distinguishes three transport-level outcomes
that plain ``TimeoutError`` conflated:

* :class:`FabricTimeout` — a ``recv`` waited its full timeout and nothing
  arrived.  The peer may be dead, slow, or the message may have been lost;
  the caller consults the :class:`repro.comm.detector.FailureDetector` to
  decide.
* :class:`PeerDeadError` — the transport *knows* the peer is gone (its
  thread exited and tore the connection down, like a TCP RST after a
  process crash).  Raised immediately, without burning the timeout.
* :class:`ClusterHalted` — some rank called :meth:`SimulatedFabric.halt`
  (the moral equivalent of ``MPI_Abort``); every blocked ``recv`` wakes and
  raises this so the whole attempt unwinds in bounded time.
* :class:`RetransmitExhausted` — the reliable link layer gave up on a
  message after its bounded retry budget; the sender treats the peer as
  unreachable.

``FabricTimeout`` subclasses :class:`TimeoutError` so pre-existing callers
that caught the generic type keep working.
"""

from __future__ import annotations

__all__ = [
    "FabricTimeout",
    "PeerDeadError",
    "ClusterHalted",
    "RetransmitExhausted",
    "RankKilled",
]


class FabricTimeout(TimeoutError):
    """``recv`` timed out: no message and no transport-level diagnosis."""

    def __init__(self, dst: int, src: int, tag: int, timeout: float):
        self.dst = dst
        self.src = src
        self.tag = tag
        self.timeout = timeout
        super().__init__(
            f"rank {dst} timed out after {timeout}s waiting for "
            f"(src={src}, tag={tag})"
        )


class PeerDeadError(ConnectionError):
    """The transport observed the peer's death (fail-stop crash)."""

    def __init__(self, dst: int, src: int, tag: int = 0):
        self.dst = dst
        self.src = src
        self.tag = tag
        super().__init__(f"rank {dst}: peer rank {src} is dead")


class ClusterHalted(RuntimeError):
    """The fabric was halted (MPI_Abort-style) while this rank was blocked."""

    def __init__(self, rank: int, reason: str = ""):
        self.rank = rank
        self.reason = reason
        super().__init__(
            f"rank {rank}: cluster halted" + (f" ({reason})" if reason else "")
        )


class RetransmitExhausted(ConnectionError):
    """The reliable link layer exceeded its retry budget for one message."""

    def __init__(self, src: int, dst: int, tag: int, retries: int):
        self.src = src
        self.dst = dst
        self.tag = tag
        self.retries = retries
        super().__init__(
            f"rank {src}: message to rank {dst} (tag={tag}) lost after "
            f"{retries} retransmits"
        )


class RankKilled(RuntimeError):
    """Raised inside a worker when the fault plan crashes this rank."""

    def __init__(self, rank: int, iteration: int):
        self.rank = rank
        self.iteration = iteration
        super().__init__(f"rank {rank} killed at iteration {iteration}")
