"""Collective algorithms over point-to-point messaging, plus their analytic
α-β costs.

Three allreduce algorithms are provided, covering the design space the
paper's Table 2 sketches (its ``log(P) · t_comm`` iteration-time column is
the binomial-tree cost):

========================  =========================  ==========================
algorithm                 messages on critical path  bytes on critical path
========================  =========================  ==========================
``tree``  (binomial)      2·⌈log₂P⌉                  2·⌈log₂P⌉·n
``ring``                  2·(P−1)                    2·(P−1)·n/P ≈ 2n
``rhd`` (recursive        2·log₂P                    2·n·(1−1/P)
halving-doubling)
========================  =========================  ==========================

Every function takes a duck-typed ``comm`` exposing ``rank``, ``size``,
``send(dst, payload, tag)`` and ``recv(src, tag)``; the real implementation
is :class:`repro.comm.communicator.Communicator`.  All algorithms reduce with
exact elementwise addition in rank-deterministic order, so every rank
computes bit-identical results — the foundation of the sequential-consistency
guarantee.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs import NULL_SPAN, timed as _timed
from ..obs.metrics import get_registry as _get_registry
from ..obs.trace import get_tracer as _get_tracer
from .fabric import NetworkProfile


def _coll_span(op: str, comm, payload=None, algorithm: str | None = None):
    """Span + per-collective wall-latency histogram for one collective call.

    The histogram series is ``comm.<op>_s`` labeled by algorithm (where one
    exists), so e.g. tree vs. ring allreduce latencies stay separable; the
    span carries rank/nbytes for the timeline view.  Collapses to the shared
    no-op before building any attributes when telemetry is disabled.
    """
    if not (_get_tracer().enabled or _get_registry().enabled):
        return NULL_SPAN
    attrs = {"rank": comm.rank, "size": comm.size}
    if payload is not None:
        attrs["nbytes"] = int(getattr(payload, "nbytes", 0))
    labels = None
    if algorithm is not None:
        attrs["algorithm"] = algorithm
        labels = {"algorithm": algorithm}
    return _timed(f"comm.{op}", hist_labels=labels, **attrs)


__all__ = [
    "bcast_tree",
    "reduce_tree",
    "allreduce_tree",
    "allreduce_ring",
    "allreduce_rhd",
    "allgather_ring",
    "barrier_dissemination",
    "ALLREDUCE_ALGORITHMS",
    "allreduce_cost",
    "allreduce_message_count",
    "bcast_cost",
    "reduce_cost",
]


def _vrank(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _actual(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast_tree(comm, value, root: int = 0, tag: int = 0):
    """Binomial-tree broadcast: ⌈log₂P⌉ stages, P−1 messages total."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return value
    with _coll_span("bcast", comm, value):
        v = _vrank(rank, root, size)
        mask = 1
        while mask < size:
            if v < mask:
                dst = v + mask
                if dst < size:
                    comm.send(_actual(dst, root, size), value, tag=tag)
            elif v < 2 * mask:
                value = comm.recv(_actual(v - mask, root, size), tag=tag)
            mask <<= 1
        return value


def reduce_tree(comm, array: np.ndarray, root: int = 0, tag: int = 0):
    """Binomial-tree sum-reduction to ``root``.

    Children are accumulated in ascending-mask order on every rank, so the
    floating-point summation order is deterministic.  Non-root ranks return
    ``None``.
    """
    size, rank = comm.size, comm.rank
    acc = np.array(array, dtype=np.float64, copy=True)
    if size == 1:
        return acc
    with _coll_span("reduce", comm, acc):
        v = _vrank(rank, root, size)
        mask = 1
        while mask < size:
            if v & mask:
                comm.send(_actual(v - mask, root, size), acc, tag=tag)
                return None
            src = v + mask
            if src < size:
                acc += comm.recv(_actual(src, root, size), tag=tag)
            mask <<= 1
        return acc


def allreduce_tree(comm, array: np.ndarray, tag: int = 0) -> np.ndarray:
    """reduce-to-0 followed by broadcast — the paper's log(P) model."""
    with _coll_span("allreduce", comm, array, algorithm="tree"):
        reduced = reduce_tree(comm, array, root=0, tag=tag)
        return bcast_tree(comm, reduced, root=0, tag=tag + 1)


def allreduce_ring(comm, array: np.ndarray, tag: int = 0) -> np.ndarray:
    """Ring allreduce: reduce-scatter then ring allgather.

    Bandwidth-optimal (each rank moves ≈2n bytes regardless of P); this is
    the algorithm production stacks (NCCL, MLSL) use for large gradient
    tensors.
    """
    if comm.size == 1:
        return np.array(array, dtype=np.float64, copy=True)
    with _coll_span("allreduce", comm, array, algorithm="ring"):
        size, rank = comm.size, comm.rank
        flat = np.asarray(array, dtype=np.float64).ravel().copy()
        # Chunk boundaries follow np.array_split's convention (first n % P
        # chunks get the extra element) computed arithmetically — no temporary
        # chunk views on the per-iteration critical path.
        base, extra = divmod(flat.size, size)
        offsets = [0] * (size + 1)
        for r in range(size):
            offsets[r + 1] = offsets[r] + base + (1 if r < extra else 0)
        right = (rank + 1) % size
        left = (rank - 1) % size

        # reduce-scatter: after P-1 steps, rank owns the full sum of chunk
        # (rank+1) % size
        for step in range(size - 1):
            send_idx = (rank - step) % size
            recv_idx = (rank - step - 1) % size
            comm.send(right, flat[offsets[send_idx] : offsets[send_idx + 1]], tag=tag)
            incoming = comm.recv(left, tag=tag)
            flat[offsets[recv_idx] : offsets[recv_idx + 1]] += incoming

        # allgather: circulate the completed chunks
        for step in range(size - 1):
            send_idx = (rank - step + 1) % size
            recv_idx = (rank - step) % size
            comm.send(right, flat[offsets[send_idx] : offsets[send_idx + 1]], tag=tag + 1)
            incoming = comm.recv(left, tag=tag + 1)
            flat[offsets[recv_idx] : offsets[recv_idx + 1]] = incoming

        return flat.reshape(np.asarray(array).shape)


def allreduce_rhd(comm, array: np.ndarray, tag: int = 0) -> np.ndarray:
    """Recursive halving-doubling allreduce (power-of-two ranks only).

    Latency-optimal message count (2·log₂P) with near-bandwidth-optimal
    volume (2n·(1−1/P)); Rabenseifner's algorithm.
    """
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        raise ValueError("recursive halving-doubling requires power-of-two ranks")
    flat = np.asarray(array, dtype=np.float64).ravel().copy()
    n = flat.size
    if size == 1:
        return flat.reshape(np.asarray(array).shape)

    # Region boundaries come from identical arithmetic on all ranks, so the
    # keep/send splits agree without any coordination messages.
    def region(lo: int, hi: int, take_high: bool) -> tuple[int, int]:
        mid = (lo + hi) // 2
        return (mid, hi) if take_high else (lo, mid)

    with _coll_span("allreduce", comm, array, algorithm="rhd"):
        # reduce-scatter by recursive halving; record each level's split so
        # the allgather can replay it in reverse
        levels: list[tuple[int, tuple[int, int], tuple[int, int]]] = []
        lo, hi = 0, n
        mask = size >> 1
        while mask:
            partner = rank ^ mask
            i_am_high = bool(rank & mask)
            keep = region(lo, hi, i_am_high)
            give = region(lo, hi, not i_am_high)
            comm.send(partner, flat[give[0] : give[1]], tag=tag)
            flat[keep[0] : keep[1]] += comm.recv(partner, tag=tag)
            levels.append((partner, keep, give))
            lo, hi = keep
            mask >>= 1

        # allgather by recursive doubling: at each reversed level I own
        # `keep` fully reduced and my partner owns the sibling `give`;
        # exchanging them reconstructs the parent region.
        for partner, keep, give in reversed(levels):
            comm.send(partner, flat[keep[0] : keep[1]], tag=tag + 1)
            flat[give[0] : give[1]] = comm.recv(partner, tag=tag + 1)

        return flat.reshape(np.asarray(array).shape)


def allgather_ring(comm, array, tag: int = 0) -> list:
    """Ring allgather: every rank ends with [contribution₀ … contribution₋₁].

    Accepts arbitrary payloads (tuples of arrays, scalars, …) — only
    ndarrays are defensively copied.
    """
    size, rank = comm.size, comm.rank
    pieces: list = [None] * size
    pieces[rank] = np.array(array, copy=True) if isinstance(array, np.ndarray) else array
    if size == 1:
        return pieces
    with _coll_span("allgather", comm, array):
        right, left = (rank + 1) % size, (rank - 1) % size
        for step in range(size - 1):
            send_idx = (rank - step) % size
            recv_idx = (rank - step - 1) % size
            comm.send(right, pieces[send_idx], tag=tag)
            pieces[recv_idx] = comm.recv(left, tag=tag)
        return pieces


def barrier_dissemination(comm, tag: int = 0) -> None:
    """Dissemination barrier: ⌈log₂P⌉ rounds of shifted token exchange."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    with _coll_span("barrier", comm):
        k = 1
        while k < size:
            comm.send((rank + k) % size, np.zeros(0), tag=tag)
            comm.recv((rank - k) % size, tag=tag)
            k <<= 1
            tag += 1


ALLREDUCE_ALGORITHMS = {
    "tree": allreduce_tree,
    "ring": allreduce_ring,
    "rhd": allreduce_rhd,
}


# --------------------------------------------------------------------------
# Analytic critical-path costs (used by repro.perfmodel and checked against
# the simulated fabric in tests).
# --------------------------------------------------------------------------

def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


def bcast_cost(p: int, nbytes: int, profile: NetworkProfile) -> float:
    """Binomial broadcast critical path: ⌈log₂P⌉ sequential messages."""
    return _log2ceil(p) * profile.transfer_time(nbytes)


def reduce_cost(p: int, nbytes: int, profile: NetworkProfile) -> float:
    return _log2ceil(p) * profile.transfer_time(nbytes)


def allreduce_cost(
    p: int, nbytes: int, profile: NetworkProfile, algorithm: str = "tree"
) -> float:
    """Critical-path time of one allreduce of ``nbytes`` across ``p`` ranks."""
    if p <= 1:
        return 0.0
    if algorithm == "tree":
        return 2 * _log2ceil(p) * profile.transfer_time(nbytes)
    if algorithm == "ring":
        chunk = nbytes / p
        return 2 * (p - 1) * profile.transfer_time(chunk)
    if algorithm == "rhd":
        lg = _log2ceil(p)
        return 2 * lg * profile.alpha + 2 * nbytes * (1 - 1 / p) * profile.beta
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def allreduce_message_count(p: int, algorithm: str = "tree") -> int:
    """Messages on one rank's critical path (the paper's latency term)."""
    if p <= 1:
        return 0
    if algorithm == "tree":
        return 2 * _log2ceil(p)
    if algorithm == "ring":
        return 2 * (p - 1)
    if algorithm == "rhd":
        return 2 * _log2ceil(p)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
