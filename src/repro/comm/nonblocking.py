"""Nonblocking communication: request handles and progress-driven
collectives over the simulated fabric.

This is the overlap substrate production large-batch stacks rely on (Das
et al. 2016; Goyal et al. 2017; the MLSL stack behind the paper's own
runs): gradient *buckets* are allreduced while backward is still producing
the remaining gradients, so most of the α-β communication cost hides under
compute instead of extending the critical path.

Three request kinds, all sharing the mpi4py ``wait``/``test`` contract:

* :class:`SendRequest` — returned by ``Communicator.isend``; buffered
  sends complete immediately (the fabric copies the payload).
* :class:`RecvRequest` — returned by ``Communicator.irecv``; ``test``
  polls the mailbox without blocking or advancing any clock, ``wait``
  blocks and then merges the arrival time into the rank clock.
* :class:`AllreduceRequest` — returned by ``Communicator.iallreduce``; a
  tag-namespaced state machine running one allreduce algorithm
  (tree/ring/rhd) incrementally.  Multiple requests can be in flight at
  once and complete out of order — each owns a private tag block, so
  interleaved progress can never cross-match messages.

Simulated time.  An in-flight operation keeps its own *pipeline clock*
(``op_time``), modelling a NIC/progress engine that runs concurrently with
compute: sends are posted at ``op_time`` via :meth:`SimulatedFabric.post_send`
(charging the rank clock nothing), and every received message advances
``op_time`` to ``max(op_time, arrival)``.  Only ``wait`` merges the final
``op_time`` into the rank clock — so a rank that computes while an
operation progresses ends at ``max(compute, comm)``, the overlap regime,
instead of ``compute + comm``.

Bitwise semantics.  The state machines reuse the exact arithmetic of the
blocking collectives (same pairings, same accumulation order), so an
``iallreduce`` result is bit-identical to the blocking ``allreduce`` of the
same buffer with the same algorithm.
"""

from __future__ import annotations

import numpy as np

from .fabric import SimulatedFabric

__all__ = [
    "Request",
    "SendRequest",
    "RecvRequest",
    "AllreduceRequest",
    "IALLREDUCE_ALGORITHMS",
]


class Request:
    """mpi4py-style handle for a nonblocking operation.

    ``test()`` returns completion *without blocking* (and never advances
    the rank clock); ``wait()`` blocks until complete, merges the
    operation's finish time into the rank clock, and returns the payload
    (``None`` for sends).  Both are idempotent after completion.
    """

    def test(self) -> bool:
        raise NotImplementedError

    def wait(self, timeout: float | None = None):
        raise NotImplementedError

    @property
    def done(self) -> bool:
        raise NotImplementedError


class SendRequest(Request):
    """A buffered nonblocking send: complete the moment it is posted.

    The fabric copies ndarray payloads on injection (value semantics), so
    there is no buffer to hand back and nothing to progress.
    """

    def test(self) -> bool:
        return True

    def wait(self, timeout: float | None = None):
        return None

    @property
    def done(self) -> bool:
        return True


class RecvRequest(Request):
    """A posted receive: completes when the matching message is consumed.

    Completion merges the message's arrival time into the rank clock — the
    data cannot be *used* before it exists on this rank, even though the
    request was posted early.
    """

    def __init__(self, comm, src: int, tag: int = 0):
        self._comm = comm
        self._src = src
        self._tag = tag
        self._payload = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def payload(self):
        """The received payload (valid once the request is complete)."""
        return self._payload

    def _complete(self, env) -> None:
        self._payload = env.payload
        self._done = True
        self._comm.fabric.clocks[self._comm.rank].merge(env.arrival_time)
        if self._comm.detector is not None:
            self._comm.detector.observe(self._src, self._comm.time)

    def test(self) -> bool:
        if self._done:
            return True
        env = self._comm.fabric.poll(self._comm.rank, self._src, self._tag)
        if env is None:
            return False
        self._complete(env)
        return True

    def wait(self, timeout: float | None = None):
        if not self._done:
            effective = self._comm.recv_timeout if timeout is None else timeout
            env = self._comm.fabric.recv_envelope(
                self._comm.rank, self._src, tag=self._tag, timeout=effective
            )
            self._complete(env)
        return self._payload


# --------------------------------------------------------------------------
# Allreduce state machines.
#
# Each algorithm is a generator mirroring its blocking twin in
# repro.comm.collectives: it posts sends through the owning request (NIC
# semantics, charged to the operation clock) and *yields* ``(src, tag)``
# whenever it needs a message; the driver feeds the payload back in.  The
# arithmetic — pairings, chunk boundaries, accumulation order — is copied
# verbatim so results are bit-identical to the blocking collectives.
# --------------------------------------------------------------------------


def _tree_steps(op: "AllreduceRequest", flat: np.ndarray, tag: int):
    """Binomial reduce-to-0 then binomial broadcast (root fixed at 0)."""
    size, rank = op.size, op.rank
    acc = flat
    # reduce phase: children accumulate in ascending-mask order
    mask = 1
    reduced = True
    while mask < size:
        if rank & mask:
            op.post(rank - mask, acc, tag)
            reduced = False
            break
        src = rank + mask
        if src < size:
            acc += yield (src, tag)
        mask <<= 1
    # broadcast phase (tag + 1): non-participants of the reduce tail wait
    # for the reduced buffer to come back down
    mask = 1
    while mask < size:
        if rank < mask:
            dst = rank + mask
            if dst < size:
                op.post(dst, acc, tag + 1)
        elif rank < 2 * mask:
            acc = yield (rank - mask, tag + 1)
            reduced = True
        mask <<= 1
    assert reduced
    return acc


def _ring_steps(op: "AllreduceRequest", flat: np.ndarray, tag: int):
    """Ring reduce-scatter + ring allgather (same chunking as blocking)."""
    size, rank = op.size, op.rank
    base, extra = divmod(flat.size, size)
    offsets = [0] * (size + 1)
    for r in range(size):
        offsets[r + 1] = offsets[r] + base + (1 if r < extra else 0)
    right = (rank + 1) % size
    left = (rank - 1) % size

    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        op.post(right, flat[offsets[send_idx] : offsets[send_idx + 1]], tag)
        incoming = yield (left, tag)
        flat[offsets[recv_idx] : offsets[recv_idx + 1]] += incoming

    for step in range(size - 1):
        send_idx = (rank - step + 1) % size
        recv_idx = (rank - step) % size
        op.post(right, flat[offsets[send_idx] : offsets[send_idx + 1]], tag + 1)
        incoming = yield (left, tag + 1)
        flat[offsets[recv_idx] : offsets[recv_idx + 1]] = incoming

    return flat


def _rhd_steps(op: "AllreduceRequest", flat: np.ndarray, tag: int):
    """Recursive halving-doubling (power-of-two ranks, checked upstream)."""
    size, rank = op.size, op.rank
    n = flat.size

    def region(lo: int, hi: int, take_high: bool) -> tuple[int, int]:
        mid = (lo + hi) // 2
        return (mid, hi) if take_high else (lo, mid)

    levels: list[tuple[int, tuple[int, int], tuple[int, int]]] = []
    lo, hi = 0, n
    mask = size >> 1
    while mask:
        partner = rank ^ mask
        i_am_high = bool(rank & mask)
        keep = region(lo, hi, i_am_high)
        give = region(lo, hi, not i_am_high)
        op.post(partner, flat[give[0] : give[1]], tag)
        flat[keep[0] : keep[1]] += yield (partner, tag)
        levels.append((partner, keep, give))
        lo, hi = keep
        mask >>= 1

    for partner, keep, give in reversed(levels):
        op.post(partner, flat[keep[0] : keep[1]], tag + 1)
        flat[give[0] : give[1]] = yield (partner, tag + 1)

    return flat


IALLREDUCE_ALGORITHMS = {
    "tree": _tree_steps,
    "ring": _ring_steps,
    "rhd": _rhd_steps,
}


class AllreduceRequest(Request):
    """One in-flight allreduce, progressed incrementally.

    The request owns a private tag block (namespaced by the communicator's
    collective sequence counter), so any number of requests can be in
    flight per rank and completed in any order.  ``wait()`` returns the
    reduced array — bitwise identical on every rank and bitwise identical
    to the blocking ``allreduce`` of the same buffer.

    ``launch_time`` / ``completion_time`` expose the operation's simulated
    lifetime; ``sim_latency`` is their difference once complete.  The
    completion time only enters the rank clock at ``wait()`` — until then
    the rank is free to compute underneath the transfer.
    """

    def __init__(self, comm, array: np.ndarray, algorithm: str, tag: int,
                 copy: bool = True):
        if algorithm not in IALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        if algorithm == "rhd" and comm.size & (comm.size - 1):
            raise ValueError(
                "recursive halving-doubling requires power-of-two ranks"
            )
        self._comm = comm
        self._fabric: SimulatedFabric = comm.fabric
        self.rank = comm.rank
        self.size = comm.size
        self.algorithm = algorithm
        self._shape = np.asarray(array).shape
        flat = np.asarray(array, dtype=np.float64).ravel()
        if copy:
            flat = flat.copy()
        self.launch_time = comm.time
        self._op_time = self.launch_time
        self._result: np.ndarray | None = None
        self._done = False
        self._need: tuple[int, int] | None = None
        if self.size == 1:
            self._finish(flat)
        else:
            self._gen = IALLREDUCE_ALGORITHMS[algorithm](self, flat, tag)
            self._advance(None, first=True)

    # -- state machine plumbing ---------------------------------------------
    def post(self, dst: int, payload: np.ndarray, tag: int) -> None:
        """Post one of the operation's sends at the pipeline clock."""
        self._fabric.post_send(self.rank, dst, payload, tag=tag,
                               at_time=self._op_time)

    def _finish(self, result: np.ndarray) -> None:
        self._result = result.reshape(self._shape)
        self._done = True
        self._need = None
        self._gen = None

    def _advance(self, payload, first: bool = False) -> None:
        try:
            self._need = self._gen.send(None if first else payload)
        except StopIteration as stop:
            self._finish(stop.value)

    def _consume(self, env) -> None:
        if env.arrival_time > self._op_time:
            self._op_time = env.arrival_time
        self._advance(env.payload)

    # -- Request contract ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def completion_time(self) -> float:
        """Simulated time the operation finished (valid once ``done``)."""
        return self._op_time

    @property
    def sim_latency(self) -> float:
        """Simulated seconds the operation occupied the fabric."""
        return self._op_time - self.launch_time

    @property
    def result(self) -> np.ndarray | None:
        """The reduced array (valid once ``done``; ``wait`` also merges
        the completion time into the rank clock)."""
        return self._result

    def test(self) -> bool:
        """Drain every already-arrived message; True when complete.

        Free progress: polling charges no simulated time, mirroring an
        asynchronous NIC/progress thread.
        """
        while not self._done:
            src, tag = self._need
            env = self._fabric.poll(self._comm.rank, src, tag)
            if env is None:
                return False
            self._consume(env)
        return True

    def wait(self, timeout: float | None = None) -> np.ndarray:
        """Block until complete; merge completion into the rank clock and
        return the reduced array."""
        effective = self._comm.recv_timeout if timeout is None else timeout
        while not self._done:
            src, tag = self._need
            env = self._fabric.recv_envelope(
                self._comm.rank, src, tag=tag, timeout=effective
            )
            if self._comm.detector is not None:
                self._comm.detector.observe(src, self._comm.time)
            self._consume(env)
        self._fabric.clocks[self.rank].merge(self._op_time)
        return self._result
