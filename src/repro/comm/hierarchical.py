"""Hierarchical (two-level) allreduce — how multi-node clusters like the
paper's Stampede-2 actually reduce gradients.

Real machines have two very different fabrics: fast intra-node links
(shared memory / NVLink) and a slower inter-node network (Omni-Path, IB).
A two-level allreduce exploits that:

1. **intra-node reduce** to a per-node leader (cheap links),
2. **inter-node allreduce** among the leaders only (the expensive fabric
   carries P/node_size-way traffic instead of P-way),
3. **intra-node broadcast** of the result.

On the simulated fabric both levels share one α-β profile, so the benefit
shows up in the *message structure* (inter-node hops drop from f(P) to
f(P/node_size)); the analytic cost model takes two profiles and exposes the
real asymmetric win, which the ablation bench sweeps.
"""

from __future__ import annotations

import math

import numpy as np

from .collectives import (
    ALLREDUCE_ALGORITHMS,
    allreduce_cost,
    bcast_tree,
    reduce_tree,
)
from .fabric import NetworkProfile

__all__ = ["allreduce_hierarchical", "hierarchical_cost", "node_groups"]


def node_groups(size: int, node_size: int) -> list[list[int]]:
    """Partition ranks into nodes of ``node_size`` (last may be short)."""
    if node_size <= 0:
        raise ValueError("node_size must be positive")
    return [list(range(lo, min(lo + node_size, size))) for lo in range(0, size, node_size)]


class _SubgroupComm:
    """View of a communicator restricted to a rank subset.

    Translates subgroup ranks to global ranks so the standard collective
    algorithms run unmodified on the subset; tags are offset so concurrent
    subgroups never cross-match.
    """

    def __init__(self, comm, members: list[int], tag_base: int):
        self.comm = comm
        self.members = members
        self.size = len(members)
        self.rank = members.index(comm.rank)
        self._tag_base = tag_base

    def send(self, dst: int, payload, tag: int = 0) -> None:
        self.comm.send(self.members[dst], payload, tag=self._tag_base + tag)

    def recv(self, src: int, tag: int = 0):
        return self.comm.recv(self.members[src], tag=self._tag_base + tag)


def allreduce_hierarchical(
    comm,
    array: np.ndarray,
    node_size: int,
    inter_algorithm: str = "ring",
    tag: int = 0,
) -> np.ndarray:
    """Two-level allreduce over nodes of ``node_size`` ranks.

    Every rank calls this collectively (same arguments).  Returns the global
    sum, bit-identical on every rank.
    """
    if inter_algorithm not in ALLREDUCE_ALGORITHMS:
        raise ValueError(f"unknown inter-node algorithm {inter_algorithm!r}")
    groups = node_groups(comm.size, node_size)
    my_group = next(g for g in groups if comm.rank in g)
    local = _SubgroupComm(comm, my_group, tag_base=tag)

    # 1) intra-node reduce to the node leader (subgroup rank 0)
    reduced = reduce_tree(local, array, root=0, tag=0)

    # 2) inter-node allreduce among leaders
    leaders = [g[0] for g in groups]
    if comm.rank == my_group[0]:
        if len(leaders) > 1:
            leader_comm = _SubgroupComm(comm, leaders, tag_base=tag + 4)
            fn = ALLREDUCE_ALGORITHMS[inter_algorithm]
            reduced = fn(leader_comm, reduced, tag=0)
        total = reduced
    else:
        total = None

    # 3) intra-node broadcast of the global sum
    return bcast_tree(local, total, root=0, tag=2)


def hierarchical_cost(
    p: int,
    nbytes: int,
    node_size: int,
    intra: NetworkProfile,
    inter: NetworkProfile,
    inter_algorithm: str = "ring",
) -> float:
    """Analytic critical path of the two-level scheme with asymmetric links.

    intra reduce (log₂ node_size hops on the fast fabric) + inter allreduce
    among ⌈P/node_size⌉ leaders on the slow fabric + intra broadcast.
    """
    if p <= 1:
        return 0.0
    nodes = math.ceil(p / node_size)
    within = min(node_size, p)
    lg = math.ceil(math.log2(within)) if within > 1 else 0
    intra_cost = 2 * lg * intra.transfer_time(nbytes)  # reduce + bcast
    inter_cost = allreduce_cost(nodes, nbytes, inter, inter_algorithm)
    return intra_cost + inter_cost
