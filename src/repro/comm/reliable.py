"""Reliable-link retransmission policy (bounded retry, exponential backoff).

The simulated fabric models message loss the way a reliable transport
(TCP, or verbs with retry_cnt) experiences it: a lost or corrupted frame is
*invisible to the application* but costs time — an ack-timeout fires, the
sender backs off exponentially and retransmits, and only after a bounded
number of rounds does the link declare the peer unreachable.

Because ranks here are single-threaded (a blocked sender cannot service
acks), the retry schedule is resolved analytically at send time: the
injector decides deterministically how many rounds the message loses, the
policy prices the delay, and the envelope is delivered with the
correspondingly later arrival time.  Values are therefore exact (retransmit
semantics) while time-to-accuracy degrades measurably — exactly the
quantity the fault sweep reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetransmitPolicy"]


@dataclass(frozen=True)
class RetransmitPolicy:
    """Bounded-retry schedule for one lossy link.

    Parameters
    ----------
    ack_timeout:
        Simulated seconds the sender waits for an ack before the first
        retransmit (one round-trip estimate plus slack).
    backoff:
        Multiplier applied to the wait after every failed round
        (``ack_timeout * backoff**i`` before retransmit ``i``).
    max_retries:
        Retransmits attempted before the link declares the peer
        unreachable (:class:`repro.comm.errors.RetransmitExhausted`).
    """

    ack_timeout: float = 1e-4
    backoff: float = 2.0
    max_retries: int = 8

    def __post_init__(self):
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def delay_before_retry(self, attempt: int) -> float:
        """Seconds waited before retransmit number ``attempt`` (0-based)."""
        return self.ack_timeout * self.backoff**attempt

    def total_delay(self, lost_rounds: int) -> float:
        """Extra simulated seconds added by ``lost_rounds`` lost frames."""
        return sum(self.delay_before_retry(i) for i in range(lost_rounds))
