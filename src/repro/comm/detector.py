"""Failure detection for the simulated cluster.

Real clusters layer two signals to decide a peer is gone: transport-level
evidence (connection reset when the remote process dies) and
silence-timeouts (no message within a heartbeat interval).  The simulated
stack mirrors both:

* the fabric's ``dead_ranks`` set is the transport signal — a crashing
  rank's worker marks itself dead on the way down (fail-stop), exactly
  like the kernel tearing down its sockets;
* every delivered message doubles as a heartbeat: the communicator reports
  successful receives here, so :meth:`silence` measures how long a peer has
  been quiet in *simulated* time.

:meth:`diagnose` combines them into a verdict.  Because the transport
signal is shared state, every surviving rank reaches the *same* verdict for
a crashed peer — the agreement property synchronous recovery needs (no
rank restarts while another still waits).  A pure silence-timeout without
transport evidence stays a ``"suspect"``: the caller decides whether to
keep waiting (maybe a straggler) or abort the step.
"""

from __future__ import annotations

import threading

from ..obs.events import publish as _publish
from .errors import FabricTimeout

__all__ = ["FailureDetector", "PeerStatus"]


class PeerStatus:
    """Verdict constants returned by :meth:`FailureDetector.diagnose`."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


class FailureDetector:
    """Per-rank view of which peers are alive.

    Parameters
    ----------
    fabric:
        The shared :class:`repro.comm.SimulatedFabric` (source of the
        transport-level dead set).
    rank:
        The owning rank.
    suspect_after:
        Simulated seconds of silence after which a peer becomes a suspect.
    """

    def __init__(self, fabric, rank: int, suspect_after: float = 60.0):
        if suspect_after <= 0:
            raise ValueError("suspect_after must be positive")
        self.fabric = fabric
        self.rank = rank
        self.suspect_after = suspect_after
        self._last_heard: dict[int, float] = {}
        self._lock = threading.Lock()

    def observe(self, src: int, now: float) -> None:
        """Record a successful receive from ``src`` at simulated ``now``."""
        with self._lock:
            prev = self._last_heard.get(src, 0.0)
            if now > prev:
                self._last_heard[src] = now

    def silence(self, peer: int, now: float) -> float:
        """Simulated seconds since ``peer`` was last heard from."""
        with self._lock:
            return max(0.0, now - self._last_heard.get(peer, 0.0))

    def diagnose(self, peer: int, now: float | None = None) -> str:
        """Classify ``peer``: transport evidence wins, silence makes a
        suspect, otherwise alive."""
        if peer in self.fabric.dead_ranks:
            return PeerStatus.DEAD
        if now is None:
            now = self.fabric.time_of(self.rank)
        if self.silence(peer, now) > self.suspect_after:
            return PeerStatus.SUSPECT
        return PeerStatus.ALIVE

    def diagnose_timeout(self, exc: FabricTimeout) -> str:
        """Verdict for the peer a :class:`FabricTimeout` was waiting on."""
        verdict = self.diagnose(exc.src)
        _publish("detector.verdict", rank=self.rank, peer=exc.src,
                 verdict=verdict, timeout_s=exc.timeout)
        return verdict

    def dead_peers(self) -> set[int]:
        """Transport-confirmed dead ranks (identical on every survivor)."""
        return self.fabric.dead_ranks
