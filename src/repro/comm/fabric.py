"""Simulated interconnect: message passing with α-β cost accounting.

The fabric is the "wire" between simulated ranks.  Payloads move through
thread-safe mailboxes (each rank runs in its own Python thread, so blocking
``recv`` semantics are real), while *time* is purely logical:

* a send at sender-time ``t`` occupies the sender for ``α + β·nbytes`` and
  the message arrives at ``t + α + β·nbytes``;
* a receive first blocks until the payload exists, then merges the arrival
  time into the receiver's logical clock (plus the receiver's copy cost).

α (latency) and β (inverse bandwidth) come from a :class:`NetworkProfile`;
the profiles for the paper's interconnects (Table 11) live in
:mod:`repro.perfmodel.hardware`.

The fabric also keeps global message/byte counters — the quantities
Figures 9 and 10 plot.

Fault tolerance hooks (see ``docs/architecture.md``, "Failure model &
recovery"):

* an optional :class:`repro.faults.FaultInjector` prices message loss,
  checksum-detected corruption, and delay into arrival times (reliable-link
  retransmit semantics: values exact, time lost);
* ``mark_dead(rank)`` is the transport-level crash notification (a dying
  rank's connections reset); a ``recv`` from a dead peer raises
  :class:`PeerDeadError` instead of burning its timeout;
* ``halt()`` is ``MPI_Abort``: every blocked ``recv`` wakes with
  :class:`ClusterHalted`, so a failed step unwinds in bounded wall time;
* ``recv(timeout=...)`` raises the typed :class:`FabricTimeout` (a
  ``TimeoutError`` subclass) instead of blocking forever.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import counter as _counter, get_registry as _get_registry
from .clock import LogicalClock
from .errors import ClusterHalted, FabricTimeout, PeerDeadError

__all__ = [
    "NetworkProfile",
    "FabricStats",
    "SimulatedFabric",
    "Envelope",
    "FabricTimeout",
    "PeerDeadError",
    "ClusterHalted",
]


@dataclass(frozen=True)
class NetworkProfile:
    """α-β model of one interconnect.

    Parameters
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (1 / bandwidth).
    name:
        Display label, e.g. ``"Mellanox 56Gb/s FDR IB"``.
    """

    alpha: float
    beta: float
    name: str = "generic"

    def __post_init__(self):
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    @staticmethod
    def ideal() -> "NetworkProfile":
        """Zero-cost network (for pure-correctness tests)."""
        return NetworkProfile(0.0, 0.0, "ideal")


@dataclass
class Envelope:
    """A message in flight: payload plus its simulated arrival time."""

    payload: object
    nbytes: int
    arrival_time: float
    src: int
    tag: int


@dataclass
class FabricStats:
    """Global communication counters (Figures 9/10)."""

    messages: int = 0
    bytes: int = 0

    def record(self, nbytes: int) -> None:
        self.messages += 1
        self.bytes += nbytes


def _record_message(kind: str, nbytes: int) -> None:
    """Mirror one wire message into the obs metrics registry.

    Separate from :class:`FabricStats` (which experiments always need) so
    the hot path pays a single ``enabled`` check when telemetry is off.
    """
    if not _get_registry().enabled:
        return
    _counter("comm.messages", kind=kind).inc()
    _counter("comm.bytes", kind=kind).inc(nbytes)


def payload_nbytes(payload) -> int:
    """Wire size of a payload: ndarray buffers are exact, scalars 8 bytes,
    everything else a small fixed envelope (control messages)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (int, float, np.floating, np.integer)):
        return 8
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload) or 8
    return 64


class SimulatedFabric:
    """All-to-all interconnect among ``size`` ranks.

    One mailbox per destination rank, keyed by (source, tag).  ``send`` is
    asynchronous-with-timing (the sender's clock advances by the transfer
    time, matching blocking MPI sends of rendezvous-sized gradient
    messages); ``recv`` blocks the calling thread until the payload exists,
    the peer is known dead, the fabric is halted, or the timeout fires.
    """

    def __init__(self, size: int, profile: NetworkProfile | None = None,
                 injector=None):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.profile = profile if profile is not None else NetworkProfile.ideal()
        #: optional :class:`repro.faults.FaultInjector` (duck-typed)
        self.injector = injector
        self.clocks = [LogicalClock() for _ in range(size)]
        self.stats = FabricStats()
        self._mailboxes: list[dict[tuple[int, int], deque[Envelope]]] = [
            defaultdict(deque) for _ in range(size)
        ]
        self._conditions = [threading.Condition() for _ in range(size)]
        self._stats_lock = threading.Lock()
        self._dead: set[int] = set()
        self._halted = False
        self._halt_reason = ""

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")

    # -- failure signalling ---------------------------------------------------
    @property
    def dead_ranks(self) -> set[int]:
        """Ranks the transport knows have crashed (fail-stop)."""
        return set(self._dead)

    @property
    def halted(self) -> bool:
        return self._halted

    def mark_dead(self, rank: int) -> None:
        """Transport-level crash notification: ``rank`` will never send
        again.  Wakes every blocked ``recv`` so waits on the dead peer fail
        fast instead of burning their timeout."""
        self._check_rank(rank)
        self._dead.add(rank)
        for cond in self._conditions:
            with cond:
                cond.notify_all()

    def halt(self, reason: str = "") -> None:
        """MPI_Abort: wake every blocked ``recv`` with ClusterHalted."""
        self._halted = True
        if reason and not self._halt_reason:
            self._halt_reason = reason
        for cond in self._conditions:
            with cond:
                cond.notify_all()

    def _fault_delay(self, src: int, dst: int) -> float:
        """Extra arrival delay from injected faults (0 when no injector).

        May raise :class:`repro.comm.errors.RetransmitExhausted` in the
        *sender* thread when the reliable link gives up on the message.
        """
        if self.injector is None:
            return 0.0
        return self.injector.decide_send(src, dst)

    # -- point-to-point ---------------------------------------------------------
    def isend(self, src: int, dst: int, payload, tag: int = 0) -> None:
        """Nonblocking send: the sender is only charged the injection
        latency α; the payload still arrives a full α + β·n after the
        current send time (the NIC drains the transfer in the background).

        This is the primitive behind communication/computation overlap
        (Das et al. 2016; Goyal et al. 2017): compute advanced after an
        ``isend`` happens *concurrently* with the transfer.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not allowed; use local state")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = payload_nbytes(payload)
        extra = self._fault_delay(src, dst)
        t_start = self.clocks[src].advance(self.profile.alpha)
        arrival = t_start + self.profile.beta * nbytes + extra
        with self._stats_lock:
            self.stats.record(nbytes)
        _record_message("isend", nbytes)
        self._deliver(Envelope(payload, nbytes, arrival, src, tag), dst)

    def post_send(
        self, src: int, dst: int, payload, tag: int = 0,
        at_time: float | None = None,
    ) -> float:
        """NIC-offloaded send posted at simulated time ``at_time``.

        Unlike :meth:`send`/:meth:`isend`, the sender's *rank clock* is not
        touched at all: the message belongs to an asynchronous operation
        (an in-flight bucket allreduce) whose progress engine keeps its own
        operation clock.  The payload arrives a full ``α + β·n`` after
        ``at_time`` (default: the sender's current clock); the arrival time
        is returned so the operation can advance its pipeline.

        Fault injection applies per posted message — every bucket of a
        bucketed exchange rolls its own loss/delay decision, exactly like
        the per-message reliable link under blocking sends.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not allowed; use local state")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = payload_nbytes(payload)
        extra = self._fault_delay(src, dst)
        t_post = self.clocks[src].time if at_time is None else at_time
        arrival = t_post + self.profile.transfer_time(nbytes) + extra
        with self._stats_lock:
            self.stats.record(nbytes)
        _record_message("post", nbytes)
        self._deliver(Envelope(payload, nbytes, arrival, src, tag), dst)
        return arrival

    def send(self, src: int, dst: int, payload, tag: int = 0) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``; advances src's clock.

        ndarray payloads are copied so later in-place mutation by the sender
        cannot race the receiver (value semantics, like a real wire).  With
        a fault injector installed, retransmit/backoff delays occupy the
        sender too (stop-and-wait reliable link).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not allowed; use local state")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = payload_nbytes(payload)
        extra = self._fault_delay(src, dst)
        cost = self.profile.transfer_time(nbytes) + extra
        t_send = self.clocks[src].advance(cost)
        with self._stats_lock:
            self.stats.record(nbytes)
        _record_message("send", nbytes)
        self._deliver(Envelope(payload, nbytes, arrival_time=t_send, src=src,
                               tag=tag), dst)

    def _deliver(self, env: Envelope, dst: int) -> None:
        cond = self._conditions[dst]
        with cond:
            self._mailboxes[dst][(env.src, env.tag)].append(env)
            cond.notify_all()

    def poll(self, dst: int, src: int, tag: int = 0) -> Envelope | None:
        """Nonblocking mailbox check: pop and return the next envelope on
        ``(src, tag)`` if one is queued, else ``None``.  Never blocks and
        never touches any clock — the caller (a request's ``test``) decides
        what completion means for simulated time.

        Raises :class:`ClusterHalted` if the job aborted, and
        :class:`PeerDeadError` once ``src`` is dead with nothing queued.
        """
        self._check_rank(src)
        self._check_rank(dst)
        cond = self._conditions[dst]
        key = (src, tag)
        box = self._mailboxes[dst]
        with cond:
            if self._halted:
                raise ClusterHalted(dst, self._halt_reason)
            if len(box[key]) > 0:
                return box[key].popleft()
            if src in self._dead:
                raise PeerDeadError(dst, src, tag)
            return None

    def recv_envelope(
        self, dst: int, src: int, tag: int = 0, timeout: float = 60.0
    ) -> Envelope:
        """Blocking receive returning the raw :class:`Envelope` without
        merging its arrival time into ``dst``'s clock.

        The nonblocking request layer builds on this: an in-flight
        operation consumes arrival times on its own pipeline clock and only
        merges into the rank clock when the caller *waits* on the result.

        Raises :class:`FabricTimeout` after ``timeout`` wall seconds,
        :class:`PeerDeadError` as soon as ``src`` is known dead (in-flight
        messages are still drained first), and :class:`ClusterHalted` if
        any rank aborted the job.
        """
        self._check_rank(src)
        self._check_rank(dst)
        cond = self._conditions[dst]
        key = (src, tag)
        box = self._mailboxes[dst]

        def ready() -> bool:
            return len(box[key]) > 0 or self._halted or src in self._dead

        with cond:
            ok = cond.wait_for(ready, timeout)
            if self._halted:
                raise ClusterHalted(dst, self._halt_reason)
            if len(box[key]) > 0:
                return box[key].popleft()
            if src in self._dead:
                raise PeerDeadError(dst, src, tag)
            assert not ok
            raise FabricTimeout(dst, src, tag, timeout)

    def recv(self, dst: int, src: int, tag: int = 0, timeout: float = 60.0):
        """Blocking receive; merges the arrival time into dst's clock.

        Raises :class:`FabricTimeout` after ``timeout`` wall seconds,
        :class:`PeerDeadError` as soon as ``src`` is known dead (in-flight
        messages are still drained first), and :class:`ClusterHalted` if
        any rank aborted the job.
        """
        env = self.recv_envelope(dst, src, tag=tag, timeout=timeout)
        self.clocks[dst].merge(env.arrival_time)
        return env.payload

    # -- inspection ----------------------------------------------------------------
    def time_of(self, rank: int) -> float:
        return self.clocks[rank].time

    @property
    def makespan(self) -> float:
        """Simulated wall-clock: the slowest rank's time."""
        return max(c.time for c in self.clocks)

    def reset_time(self) -> None:
        for c in self.clocks:
            c.reset()
        self.stats = FabricStats()
