"""mpi4py-flavoured communicator over the simulated fabric.

Each simulated rank owns one :class:`Communicator` and runs in its own
thread (see :func:`run_cluster`).  The API follows mpi4py's lowercase
object-passing conventions — ``send``/``recv``/``bcast``/``allreduce``/
``gather``/``scatter``/``barrier`` — so code written against it reads like
standard MPI programs.

Collective calls are matched by *program order*: every rank must invoke the
same collectives in the same sequence (the standard MPI contract).  An
internal sequence counter namespaces the point-to-point tags of successive
collectives so back-to-back operations can never cross-match.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from . import collectives as coll
from .fabric import NetworkProfile, SimulatedFabric
from .nonblocking import AllreduceRequest, RecvRequest, SendRequest

__all__ = ["Communicator", "run_cluster"]

# tag namespaces: user p2p traffic lives below this base
_COLLECTIVE_TAG_BASE = 1 << 20
_TAGS_PER_COLLECTIVE = 8


#: default wall-clock patience of a blocking receive (seconds)
DEFAULT_RECV_TIMEOUT = 60.0


class Communicator:
    """Rank-local handle to the simulated cluster.

    ``recv_timeout`` bounds every blocking receive (wall-clock seconds);
    a peer that stays silent that long raises a typed
    :class:`repro.comm.errors.FabricTimeout` instead of hanging the rank
    forever.  An optional :class:`repro.comm.detector.FailureDetector`
    is fed a heartbeat on every successful receive.
    """

    def __init__(
        self,
        fabric: SimulatedFabric,
        rank: int,
        recv_timeout: float | None = None,
        detector=None,
    ):
        if not 0 <= rank < fabric.size:
            raise ValueError(f"rank {rank} out of range")
        self.fabric = fabric
        self.rank = rank
        self.size = fabric.size
        self.recv_timeout = (
            DEFAULT_RECV_TIMEOUT if recv_timeout is None else recv_timeout
        )
        self.detector = detector
        self._seq = 0

    # -- local time --------------------------------------------------------------
    @property
    def time(self) -> float:
        """This rank's simulated clock (seconds)."""
        return self.fabric.time_of(self.rank)

    def compute(self, seconds: float) -> None:
        """Model ``seconds`` of local computation (advances the clock).

        A straggler fault on this rank stretches the work by the plan's
        multiplier (thermal throttling / OS jitter on one node).
        """
        injector = self.fabric.injector
        if injector is not None:
            mult = injector.compute_multiplier(self.rank)
            if mult != 1.0:
                injector.record_straggle((mult - 1.0) * seconds)
                seconds *= mult
        self.fabric.clocks[self.rank].advance(seconds)

    # -- point-to-point --------------------------------------------------------
    def send(self, dst: int, payload, tag: int = 0) -> None:
        self.fabric.send(self.rank, dst, payload, tag=tag)

    def isend(self, dst: int, payload, tag: int = 0) -> SendRequest:
        """Nonblocking send (sender charged only the injection latency α);
        the transfer completes in the background — overlap primitive."""
        self.fabric.isend(self.rank, dst, payload, tag=tag)
        return SendRequest()

    def irecv(self, src: int, tag: int = 0) -> RecvRequest:
        """Post a nonblocking receive; complete it via ``test``/``wait``."""
        return RecvRequest(self, src, tag=tag)

    def recv(self, src: int, tag: int = 0, timeout: float | None = None):
        """Blocking receive; ``timeout`` overrides the communicator default."""
        effective = self.recv_timeout if timeout is None else timeout
        payload = self.fabric.recv(self.rank, src, tag=tag, timeout=effective)
        if self.detector is not None:
            self.detector.observe(src, self.time)
        return payload

    # -- collectives ---------------------------------------------------------------
    def _next_tag(self) -> int:
        tag = _COLLECTIVE_TAG_BASE + self._seq * _TAGS_PER_COLLECTIVE
        self._seq += 1
        return tag

    def bcast(self, value=None, root: int = 0):
        """Broadcast ``value`` from ``root``; other ranks pass anything."""
        return coll.bcast_tree(self, value, root=root, tag=self._next_tag())

    def reduce(self, array: np.ndarray, root: int = 0) -> np.ndarray | None:
        """Sum-reduce to ``root``; returns None elsewhere."""
        return coll.reduce_tree(self, array, root=root, tag=self._next_tag())

    def allreduce(self, array: np.ndarray, algorithm: str = "tree") -> np.ndarray:
        """Global sum, identical (bitwise) on every rank."""
        if algorithm not in coll.ALLREDUCE_ALGORITHMS:
            raise ValueError(f"unknown allreduce algorithm {algorithm!r}")
        fn = coll.ALLREDUCE_ALGORITHMS[algorithm]
        return fn(self, array, tag=self._next_tag())

    def iallreduce(
        self, array: np.ndarray, algorithm: str = "tree", copy: bool = True
    ) -> AllreduceRequest:
        """Launch a nonblocking global sum; progress via ``test``, finish
        via ``wait`` (which returns the reduced array and charges the rank
        clock ``max`` with the operation's completion time).

        Like every collective this matches by program order: each rank must
        launch its iallreduces in the same sequence.  Completion order is
        free — any number may be in flight, each on a private tag block.
        With ``copy=False`` the operation reduces in place into ``array``
        (which must be a contiguous float64 vector).
        """
        return AllreduceRequest(
            self, array, algorithm, tag=self._next_tag(), copy=copy
        )

    def allreduce_hierarchical(
        self, array: np.ndarray, node_size: int, inter_algorithm: str = "ring"
    ) -> np.ndarray:
        """Two-level allreduce (intra-node reduce → leader allreduce →
        intra-node broadcast); see :mod:`repro.comm.hierarchical`."""
        from .hierarchical import allreduce_hierarchical

        return allreduce_hierarchical(
            self, array, node_size, inter_algorithm, tag=self._next_tag()
        )

    def allgather(self, array: np.ndarray) -> list[np.ndarray]:
        """Every rank receives [contribution of rank 0, …, rank P−1]."""
        return coll.allgather_ring(self, array, tag=self._next_tag())

    def gather(self, value, root: int = 0) -> list | None:
        """Collect one value per rank at ``root`` (rank order preserved)."""
        tag = self._next_tag()
        if self.rank == root:
            out = [None] * self.size
            out[root] = value
            for src in range(self.size):
                if src != root:
                    out[src] = self.recv(src, tag=tag)
            return out
        self.send(root, value, tag=tag)
        return None

    def scatter(self, values: Sequence | None = None, root: int = 0):
        """Distribute ``values[i]`` to rank i from ``root``."""
        tag = self._next_tag()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError("root must supply one value per rank")
            for dst in range(self.size):
                if dst != root:
                    self.send(dst, values[dst], tag=tag)
            return values[root]
        return self.recv(root, tag=tag)

    def barrier(self) -> None:
        """Dissemination barrier: returns once every rank has entered."""
        coll.barrier_dissemination(self, tag=self._next_tag())


def run_cluster(
    size: int,
    worker: Callable[[Communicator], object],
    profile: NetworkProfile | None = None,
    timeout: float = 300.0,
    injector=None,
    recv_timeout: float | None = None,
) -> tuple[list, SimulatedFabric]:
    """Run ``worker(comm)`` on ``size`` simulated ranks (one thread each).

    Returns (per-rank results in rank order, the fabric — whose ``makespan``
    and ``stats`` carry the simulated time and communication volume).  Any
    rank raising propagates the first exception after all threads stop.

    ``injector`` installs a :class:`repro.faults.FaultInjector` on the
    fabric; ``recv_timeout`` bounds every blocking receive.
    """
    fabric = SimulatedFabric(size, profile, injector=injector)
    results: list = [None] * size
    errors: list = [None] * size

    def target(rank: int) -> None:
        try:
            results[rank] = worker(
                Communicator(fabric, rank, recv_timeout=recv_timeout)
            )
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[rank] = exc

    threads = [
        threading.Thread(target=target, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise TimeoutError(f"simulated rank {t.name} did not finish")
    for err in errors:
        if err is not None:
            raise err
    return results, fabric
