"""Synthetic image-classification datasets — the ImageNet stand-in.

We cannot ship ImageNet-1k (1.28 M JPEG images), and the large-batch
phenomena the paper studies are *optimisation* phenomena: they appear on any
classification task whose loss surface is hard enough that a mis-scaled
learning rate diverges and a well-scaled one does not.  The generator below
produces class-clustered images with controllable difficulty:

* each class has a smooth random "prototype" image (low-frequency structure,
  like natural-image classes);
* each example is its class prototype, randomly shifted, scaled in
  intensity, and buried in pixel noise;
* ``difficulty`` widens the intra-class jitter and shrinks the prototype
  separation so the proxy is not trivially linearly separable.

All randomness flows through one seed, so every experiment is exactly
reproducible and every simulated worker can regenerate the same shard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["SyntheticConfig", "Dataset", "make_dataset", "gaussian_blobs"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Generator knobs for a synthetic classification dataset."""

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    train_size: int = 2000
    test_size: int = 500
    noise: float = 0.6  # pixel-noise std relative to prototype contrast
    prototype_smoothness: float = 2.0  # gaussian blur sigma of prototypes
    max_shift: int = 2  # random translation in pixels (built-in jitter)
    seed: int = 0

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.image_size < 4:
            raise ValueError("image_size must be >= 4")
        if self.train_size <= 0 or self.test_size <= 0:
            raise ValueError("dataset sizes must be positive")
        if self.noise < 0:
            raise ValueError("noise must be non-negative")


@dataclass
class Dataset:
    """In-memory dataset with the standard 4-way split layout."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    name: str = "synthetic"

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_test(self) -> int:
        return len(self.x_test)

    @property
    def input_shape(self) -> tuple[int, ...]:
        return tuple(self.x_train.shape[1:])

    def subset(self, n_train: int, n_test: int | None = None) -> "Dataset":
        """Deterministic prefix subset (for quick smoke experiments)."""
        nt = n_test if n_test is not None else self.n_test
        return Dataset(
            self.x_train[:n_train],
            self.y_train[:n_train],
            self.x_test[:nt],
            self.y_test[:nt],
            self.num_classes,
            name=f"{self.name}[:{n_train}]",
        )


def _prototypes(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Smooth per-class prototype images, mutually decorrelated."""
    raw = rng.normal(size=(cfg.num_classes, cfg.channels, cfg.image_size, cfg.image_size))
    smooth = ndimage.gaussian_filter(
        raw, sigma=(0, 0, cfg.prototype_smoothness, cfg.prototype_smoothness)
    )
    # normalise each prototype to unit contrast so `noise` is interpretable
    flat = smooth.reshape(cfg.num_classes, -1)
    flat = (flat - flat.mean(axis=1, keepdims=True)) / (
        flat.std(axis=1, keepdims=True) + 1e-12
    )
    return flat.reshape(smooth.shape)


def _sample_split(
    cfg: SyntheticConfig,
    protos: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    y = rng.integers(0, cfg.num_classes, size=n)
    x = protos[y].copy()
    # random intensity scale per example (illumination jitter)
    x *= rng.uniform(0.7, 1.3, size=(n, 1, 1, 1))
    # random integer shift per example (vectorised with np.roll per offset)
    if cfg.max_shift > 0:
        shifts = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=(n, 2))
        for (dy, dx) in np.unique(shifts, axis=0):
            mask = (shifts[:, 0] == dy) & (shifts[:, 1] == dx)
            x[mask] = np.roll(x[mask], (int(dy), int(dx)), axis=(2, 3))
    x += rng.normal(scale=cfg.noise, size=x.shape)
    return x.astype(np.float64), y.astype(np.int64)


def make_dataset(cfg: SyntheticConfig | None = None, **kwargs) -> Dataset:
    """Generate a synthetic dataset (pass a config or config kwargs)."""
    if cfg is None:
        cfg = SyntheticConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config or kwargs, not both")
    rng = np.random.default_rng(cfg.seed)
    protos = _prototypes(cfg, rng)
    x_train, y_train = _sample_split(cfg, protos, cfg.train_size, rng)
    x_test, y_test = _sample_split(cfg, protos, cfg.test_size, rng)
    # standardise with train statistics (the usual mean/std preprocessing)
    mu, sd = x_train.mean(), x_train.std() + 1e-12
    return Dataset(
        (x_train - mu) / sd,
        y_train,
        (x_test - mu) / sd,
        y_test,
        cfg.num_classes,
        name=f"synthetic-c{cfg.num_classes}-s{cfg.image_size}",
    )


def gaussian_blobs(
    n: int,
    num_classes: int = 3,
    dim: int = 8,
    separation: float = 3.0,
    noise: float = 1.0,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat-vector Gaussian-mixture classification data (unit tests, MLPs)."""
    if n <= 0 or num_classes < 2 or dim <= 0:
        raise ValueError("invalid blob parameters")
    rng = np.random.default_rng(seed)
    centres = rng.normal(size=(num_classes, dim)) * separation
    y = rng.integers(0, num_classes, size=n)
    x = centres[y] + rng.normal(scale=noise, size=(n, dim))
    return x, y
