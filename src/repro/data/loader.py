"""Shard-aware batch iteration with optional augmentation.

The serial :class:`repro.core.Trainer` and the simulated cluster both slice
batches themselves (they need exact control for the consistency tests); this
loader is the user-facing convenience for examples and custom loops, and the
single place augmentation hooks in.

Epoch advance is explicit: iterating the loader always yields the *current*
epoch (same shuffle, same augmentation draws, every time), and training
loops step epochs with :meth:`BatchLoader.epochs` or
:meth:`BatchLoader.set_epoch`.  The historical behaviour — ``__iter__``
silently advancing the epoch, so two ``list(loader)`` calls returned
different data — survives behind ``auto_advance=True`` and a deprecation
warning for callers that still rely on it implicitly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Iterator

import numpy as np

from ..cluster.sharding import epoch_permutation, shard_batch
from ..obs import timed as _timed
from .augment import AUGMENTATIONS

__all__ = ["BatchLoader"]


class BatchLoader:
    """Deterministic epoch iterator over (x, y) batches.

    Parameters
    ----------
    x, y:
        Full dataset arrays (never copied; batches are fancy-indexed views).
    batch_size:
        Global batch size.
    augment:
        ``None``/"none", an :data:`AUGMENTATIONS` key, or a callable
        ``(batch, rng) -> batch``.
    world, rank:
        When set, each batch is this rank's shard of the global batch —
        the same slices the simulated cluster uses.
    seed:
        Drives both the epoch shuffle and the augmentation randomness.
    auto_advance:
        ``True`` restores the deprecated implicit epoch advance at the end
        of every ``__iter__``; the default (``None``) keeps that behaviour
        but warns once, and ``False`` opts into the explicit API.
    reuse_buffers:
        Gather each shard into a persistent per-loader batch buffer with
        ``np.take(..., out=...)`` instead of allocating a fresh fancy-index
        copy per batch (the steady-state zero-allocation input path).  The
        yielded arrays are views of that buffer, so a batch must be fully
        consumed before requesting the next one.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        augment: str | Callable | None = None,
        world: int = 1,
        rank: int = 0,
        seed: int = 0,
        shuffle: bool = True,
        auto_advance: bool | None = None,
        reuse_buffers: bool = False,
    ):
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 <= rank < world:
            raise ValueError("rank out of range")
        self.x, self.y = x, y
        self.batch_size = batch_size
        self.world, self.rank = world, rank
        self.seed = seed
        self.shuffle = shuffle
        self.epoch = 0
        self._auto_advance = auto_advance
        self._order_cache: tuple[int, np.ndarray] | None = None
        self.reuse_buffers = bool(reuse_buffers)
        self._xbuf: np.ndarray | None = None
        self._ybuf: np.ndarray | None = None
        if augment is None:
            augment = "none"
        if isinstance(augment, str):
            if augment not in AUGMENTATIONS:
                raise KeyError(
                    f"unknown augmentation {augment!r}; available: {sorted(AUGMENTATIONS)}"
                )
            augment = AUGMENTATIONS[augment]
        self._augment = augment

    @property
    def batches_per_epoch(self) -> int:
        return -(-len(self.x) // self.batch_size)

    def __len__(self) -> int:
        return self.batches_per_epoch

    # -- explicit epoch control ------------------------------------------------
    def set_epoch(self, epoch: int) -> None:
        """Position the loader at ``epoch`` (controls shuffle + augmentation)."""
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.epoch = int(epoch)

    def epochs(self, num_epochs: int) -> Iterator[Iterator[tuple[np.ndarray, np.ndarray]]]:
        """Yield one batch iterator per epoch, advancing explicitly.

        >>> for batches in loader.epochs(3):
        ...     for xb, yb in batches:
        ...         step(xb, yb)

        Starts at the current epoch and leaves the loader positioned just
        past the last epoch, so successive ``epochs()`` calls continue the
        schedule.
        """
        if num_epochs < 0:
            raise ValueError("num_epochs must be non-negative")
        start = self.epoch
        for epoch in range(start, start + num_epochs):
            self.set_epoch(epoch)
            yield self._iter_epoch()
        self.set_epoch(start + num_epochs)

    def _epoch_order(self) -> np.ndarray:
        """Permutation of the current epoch, cached for re-iteration.

        ``epoch_permutation`` itself memoises across loaders/ranks; the
        loader-local cache additionally skips the hash lookup when the same
        epoch is replayed (the common benchmark/eval pattern).
        """
        if not self.shuffle:
            return np.arange(len(self.x))
        if self._order_cache is None or self._order_cache[0] != self.epoch:
            order = epoch_permutation(len(self.x), self.epoch, self.seed)
            self._order_cache = (self.epoch, order)
        return self._order_cache[1]

    def _iter_epoch(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield this rank's shard of every global batch of the current epoch."""
        n = len(self.x)
        order = self._epoch_order()
        aug_rng = np.random.default_rng((self.seed, self.epoch, self.rank))
        for lo in range(0, n, self.batch_size):
            with _timed("data.batch_fetch", epoch=self.epoch, rank=self.rank):
                global_idx = order[lo : lo + self.batch_size]
                local_idx = shard_batch(global_idx, self.world, self.rank)
                if len(local_idx) == 0:
                    continue
                if self.reuse_buffers:
                    xg, yg = self._gather(local_idx)
                else:
                    xg, yg = self.x[local_idx], self.y[local_idx]
                xb = self._augment(xg, aug_rng)
                batch = xb, yg
            yield batch

    def _gather(self, local_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Copy the shard into the persistent batch buffer (values identical
        to fancy indexing; short final batches reuse a prefix view)."""
        m = len(local_idx)
        if self._xbuf is None or len(self._xbuf) < m:
            self._xbuf = np.empty((m, *self.x.shape[1:]), dtype=self.x.dtype)
            self._ybuf = np.empty((m, *self.y.shape[1:]), dtype=self.y.dtype)
        xv = self._xbuf[:m]
        yv = self._ybuf[:m]
        np.take(self.x, local_idx, axis=0, out=xv)
        np.take(self.y, local_idx, axis=0, out=yv)
        return xv, yv

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate the current epoch's batches.

        With ``auto_advance`` unset or ``True``, the epoch advances after
        the last batch (deprecated implicit behaviour); with ``False`` the
        loader stays on the current epoch until told otherwise.
        """
        yield from self._iter_epoch()
        if self._auto_advance or self._auto_advance is None:
            if self._auto_advance is None:
                warnings.warn(
                    "BatchLoader.__iter__ advanced the epoch implicitly; this "
                    "is deprecated — iterate loader.epochs(n) / call "
                    "set_epoch(), or pass auto_advance=True to keep the old "
                    "behaviour silently",
                    DeprecationWarning,
                    stacklevel=2,
                )
                self._auto_advance = True
            self.epoch += 1
