"""Shard-aware batch iteration with optional augmentation.

The serial :class:`repro.core.Trainer` and the simulated cluster both slice
batches themselves (they need exact control for the consistency tests); this
loader is the user-facing convenience for examples and custom loops, and the
single place augmentation hooks in.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..cluster.sharding import epoch_permutation, shard_batch
from .augment import AUGMENTATIONS

__all__ = ["BatchLoader"]


class BatchLoader:
    """Deterministic epoch iterator over (x, y) batches.

    Parameters
    ----------
    x, y:
        Full dataset arrays (never copied; batches are fancy-indexed views).
    batch_size:
        Global batch size.
    augment:
        ``None``/"none", an :data:`AUGMENTATIONS` key, or a callable
        ``(batch, rng) -> batch``.
    world, rank:
        When set, each batch is this rank's shard of the global batch —
        the same slices the simulated cluster uses.
    seed:
        Drives both the epoch shuffle and the augmentation randomness.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        augment: str | Callable | None = None,
        world: int = 1,
        rank: int = 0,
        seed: int = 0,
        shuffle: bool = True,
    ):
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0 <= rank < world:
            raise ValueError("rank out of range")
        self.x, self.y = x, y
        self.batch_size = batch_size
        self.world, self.rank = world, rank
        self.seed = seed
        self.shuffle = shuffle
        self.epoch = 0
        if augment is None:
            augment = "none"
        if isinstance(augment, str):
            if augment not in AUGMENTATIONS:
                raise KeyError(
                    f"unknown augmentation {augment!r}; available: {sorted(AUGMENTATIONS)}"
                )
            augment = AUGMENTATIONS[augment]
        self._augment = augment

    @property
    def batches_per_epoch(self) -> int:
        return -(-len(self.x) // self.batch_size)

    def __len__(self) -> int:
        return self.batches_per_epoch

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield this rank's shard of every global batch of one epoch.

        Each call iterates the *next* epoch (fresh shuffle, fresh
        augmentation draws), mirroring a training loop's epoch structure.
        """
        n = len(self.x)
        if self.shuffle:
            order = epoch_permutation(n, self.epoch, self.seed)
        else:
            order = np.arange(n)
        aug_rng = np.random.default_rng((self.seed, self.epoch, self.rank))
        for lo in range(0, n, self.batch_size):
            global_idx = order[lo : lo + self.batch_size]
            local_idx = shard_batch(global_idx, self.world, self.rank)
            if len(local_idx) == 0:
                continue
            xb = self._augment(self.x[local_idx], aug_rng)
            yield xb, self.y[local_idx]
        self.epoch += 1
