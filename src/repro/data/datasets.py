"""ImageNet-1k bookkeeping and the standard proxy configurations.

Every analytic experiment (Tables 1/2/8/9, Figures 6/8/9/10) uses the real
ImageNet constants; the convergence experiments use proxy datasets whose
*iterations-per-epoch regime* matches the paper's via
:func:`repro.core.recipes.scale_to`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .synthetic import Dataset, SyntheticConfig, make_dataset

__all__ = [
    "IMAGENET",
    "ImageNetSpec",
    "PROXY_CONFIGS",
    "proxy_dataset",
    "TARGET_ACCURACY",
]


@dataclass(frozen=True)
class ImageNetSpec:
    """The numbers the paper's formulas plug in."""

    train_images: int = 1_281_167
    val_images: int = 50_000
    classes: int = 1000
    resnet_resolution: int = 224
    alexnet_resolution: int = 227


IMAGENET = ImageNetSpec()

#: Table 3 — "Standard Benchmarks for ImageNet training"
TARGET_ACCURACY = {
    "alexnet": 0.58,  # 100 epochs (Iandola et al. 2016)
    "resnet50": 0.753,  # 90 epochs (He et al. 2016)
}

#: Named proxy configurations.  ``tiny`` is for tests (seconds),
#: ``small`` for the benchmark harness (a few minutes per sweep point),
#: ``medium`` for the examples' fuller runs.
PROXY_CONFIGS: dict[str, SyntheticConfig] = {
    "tiny": SyntheticConfig(num_classes=4, image_size=8, channels=3,
                            train_size=512, test_size=128, noise=0.5, seed=42),
    "small": SyntheticConfig(num_classes=8, image_size=12, channels=3,
                             train_size=2048, test_size=512, noise=0.6, seed=42),
    "medium": SyntheticConfig(num_classes=16, image_size=16, channels=3,
                              train_size=8192, test_size=1024, noise=0.7, seed=42),
}


def proxy_dataset(name: str = "small") -> Dataset:
    """Generate one of the named proxy datasets."""
    if name not in PROXY_CONFIGS:
        raise KeyError(f"unknown proxy {name!r}; available: {sorted(PROXY_CONFIGS)}")
    return make_dataset(PROXY_CONFIGS[name])
