"""``repro.data`` — synthetic ImageNet proxies, augmentation, loaders."""

from .augment import AUGMENTATIONS, intensity_jitter, pipeline, random_crop, random_flip
from .datasets import IMAGENET, PROXY_CONFIGS, TARGET_ACCURACY, ImageNetSpec, proxy_dataset
from .loader import BatchLoader
from .synthetic import Dataset, SyntheticConfig, gaussian_blobs, make_dataset

__all__ = [
    "Dataset",
    "SyntheticConfig",
    "make_dataset",
    "gaussian_blobs",
    "IMAGENET",
    "ImageNetSpec",
    "PROXY_CONFIGS",
    "TARGET_ACCURACY",
    "proxy_dataset",
    "BatchLoader",
    "AUGMENTATIONS",
    "random_flip",
    "random_crop",
    "intensity_jitter",
    "pipeline",
]
