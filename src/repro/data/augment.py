"""Data augmentation pipelines.

The paper distinguishes three regimes and shows they shift the whole
accuracy-vs-batch curve (Table 10):

* **none**  — "There is no data augmentation in all the results" (main
  experiments; 73.0 % ResNet-50 baseline);
* **weak**  — mirror + small random crop ("weak data augmentation",
  75.3 % baseline);
* **heavy** — adds scale/aspect and photometric jitter (Facebook-style,
  76.3 % baseline — which the paper could not fully reproduce).

Pipelines operate on channels-first batches and draw all randomness from an
explicit generator so augmented cluster runs stay reproducible.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["random_flip", "random_crop", "intensity_jitter", "pipeline", "AUGMENTATIONS"]

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_flip(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Horizontal mirror with probability 1/2 per example."""
    flip = rng.random(len(x)) < 0.5
    out = x.copy()
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(pad: int = 2) -> Transform:
    """Zero-pad by ``pad`` and crop back at a random offset per example."""

    def transform(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, c, h, w = x.shape
        padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        out = np.empty_like(x)
        offsets = rng.integers(0, 2 * pad + 1, size=(n, 2))
        for (dy, dx) in np.unique(offsets, axis=0):
            mask = (offsets[:, 0] == dy) & (offsets[:, 1] == dx)
            out[mask] = padded[mask, :, dy : dy + h, dx : dx + w]
        return out

    return transform


def intensity_jitter(strength: float = 0.2) -> Transform:
    """Per-example brightness/contrast jitter (the 'heavy' photometric part)."""

    def transform(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = len(x)
        scale = rng.uniform(1 - strength, 1 + strength, size=(n, 1, 1, 1))
        shift = rng.uniform(-strength, strength, size=(n, 1, 1, 1))
        return x * scale + shift

    return transform


def pipeline(*transforms: Transform) -> Transform:
    """Compose transforms left to right."""

    def transform(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in transforms:
            x = t(x, rng)
        return x

    return transform


def _identity(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    return x


#: the paper's three augmentation regimes
AUGMENTATIONS: dict[str, Transform] = {
    "none": _identity,
    "weak": pipeline(random_flip, random_crop(pad=1)),
    "heavy": pipeline(random_flip, random_crop(pad=2), intensity_jitter(0.25)),
}
