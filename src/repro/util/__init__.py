"""``repro.util`` — checkpointing, profiling, and ascii plotting helpers."""

from .checkpoint import load_checkpoint, load_rng_state, save_checkpoint
from .plotting import ascii_plot, sparkline
from .timing import LayerProfiler, Timer

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_rng_state",
    "Timer",
    "LayerProfiler",
    "ascii_plot",
    "sparkline",
]
