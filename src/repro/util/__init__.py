"""``repro.util`` — checkpointing, profiling, and ascii plotting helpers."""

from .checkpoint import load_checkpoint, save_checkpoint
from .plotting import ascii_plot, sparkline
from .timing import LayerProfiler, Timer

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "Timer",
    "LayerProfiler",
    "ascii_plot",
    "sparkline",
]
