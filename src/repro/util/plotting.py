"""Terminal plotting: ascii charts for the figure experiments.

No matplotlib in this environment, so the figure drivers render their series
as compact unicode charts — enough to eyeball the crossovers the paper's
figures show.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["sparkline", "ascii_plot"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar chart: ▁▂▃▅▇ …; NaNs render as spaces."""
    vals = [float(v) for v in values]
    finite = [v for v in vals if math.isfinite(v)]
    if not finite:
        return " " * len(vals)
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    out = []
    for v in vals:
        if not math.isfinite(v):
            out.append(" ")
        else:
            idx = int((v - lo) / span * (len(_BLOCKS) - 1))
            out.append(_BLOCKS[idx])
    return "".join(out)


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 15,
    logx: bool = False,
) -> str:
    """Multi-series scatter/line chart in a character grid.

    ``series`` maps label → [(x, y), …].  Each series gets the first letter
    of its label as the marker; overlapping points show the later series.
    """
    points = [(x, y) for pts in series.values() for x, y in pts
              if math.isfinite(x) and math.isfinite(y)]
    if not points:
        return "(no data)"
    if logx and any(x <= 0 for x, _ in points):
        raise ValueError("logx requires strictly positive x values")
    xs, ys = zip(*points)

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    xlo, xhi = tx(min(xs)), tx(max(xs))
    ylo, yhi = min(ys), max(ys)
    xspan = (xhi - xlo) or 1.0
    yspan = (yhi - ylo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, pts in series.items():
        marker = label[0]
        for x, y in pts:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int((tx(x) - xlo) / xspan * (width - 1))
            row = height - 1 - int((y - ylo) / yspan * (height - 1))
            grid[row][col] = marker

    lines = [f"{yhi:8.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{ylo:8.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 8 + " └" + "─" * width)
    xlabel = f"{min(xs):g} … {max(xs):g}" + ("  (log x)" if logx else "")
    lines.append(" " * 10 + xlabel)
    legend = "   ".join(f"{label[0]} = {label}" for label in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
