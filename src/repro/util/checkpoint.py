"""Checkpointing: save/restore model + optimiser state as a single ``.npz``.

The format is flat and numpy-native so checkpoints written by the serial
trainer restore into cluster replicas and vice versa:

* ``param/<name>``      — parameter values,
* ``opt/<i>/<key>``     — per-parameter optimiser state arrays,
* ``meta/…``            — step counter and scalar state entries.
"""

from __future__ import annotations

import io
import os

import numpy as np

from ..core.optimizer import Optimizer
from ..nn.layers.base import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    iteration: int = 0,
) -> None:
    """Write model (and optionally optimiser) state to ``path`` (.npz)."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        if not name:
            raise ValueError("all parameters must be named (call assign_names)")
        arrays[f"param/{name}"] = value
    arrays["meta/iteration"] = np.array(iteration, dtype=np.int64)
    if optimizer is not None:
        snap = optimizer.state_dict()
        arrays["meta/step_count"] = np.array(snap["step_count"], dtype=np.int64)
        for i, st in enumerate(snap["state"]):
            for key, val in st.items():
                arrays[f"opt/{i}/{key}"] = np.asarray(val)
    np.savez_compressed(os.fspath(path), **arrays)


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
) -> int:
    """Restore state saved by :func:`save_checkpoint`; returns the saved
    iteration counter.  Parameter names/shapes must match the model."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        params = {
            key[len("param/"):]: data[key]
            for key in data.files
            if key.startswith("param/")
        }
        model.load_state_dict(params)
        iteration = int(data["meta/iteration"])
        if optimizer is not None:
            if "meta/step_count" not in data.files:
                raise KeyError("checkpoint has no optimiser state")
            state: list[dict] = [dict() for _ in optimizer.params]
            for key in data.files:
                if not key.startswith("opt/"):
                    continue
                _, idx, name = key.split("/", 2)
                arr = data[key]
                state[int(idx)][name] = (
                    int(arr) if arr.ndim == 0 and name == "t" else arr.copy()
                )
            optimizer.load_state_dict(
                {"step_count": int(data["meta/step_count"]), "state": state}
            )
    return iteration
