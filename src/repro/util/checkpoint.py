"""Checkpointing: save/restore model + optimiser state as a single ``.npz``.

The format is flat and numpy-native so checkpoints written by the serial
trainer restore into cluster replicas and vice versa:

* ``param/<name>``      — parameter values,
* ``opt/<i>/<key>``     — per-parameter optimiser state arrays,
* ``meta/…``            — step counter, scalar state entries, and an
  optional serialised RNG state (``meta/rng_state``) so a resumed run can
  continue its random stream bit-identically.

Writes are *atomic*: the archive is written to ``<path>.tmp`` and renamed
into place with :func:`os.replace`, so a crash mid-save (the exact scenario
the fault-tolerant cluster trainer recovers from) can never leave a
truncated ``.npz`` that poisons the subsequent restore.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..core.optimizer import Optimizer
from ..nn.layers.base import Module

__all__ = ["save_checkpoint", "load_checkpoint", "load_rng_state"]


def _encode_rng_state(rng: np.random.Generator) -> np.ndarray:
    """Serialise a Generator's bit-generator state into a uint8 array."""
    payload = json.dumps(rng.bit_generator.state).encode("utf-8")
    return np.frombuffer(payload, dtype=np.uint8).copy()


def _decode_rng_state(arr: np.ndarray) -> dict:
    return json.loads(arr.tobytes().decode("utf-8"))


def save_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    iteration: int = 0,
    rng: np.random.Generator | None = None,
) -> None:
    """Atomically write model (and optionally optimiser) state to ``path``.

    ``rng`` snapshots a live random generator (e.g. a data-augmentation
    stream) into ``meta/rng_state``; restore it with
    :func:`load_checkpoint`'s ``rng`` argument or :func:`load_rng_state`.
    """
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        if not name:
            raise ValueError("all parameters must be named (call assign_names)")
        arrays[f"param/{name}"] = value
    arrays["meta/iteration"] = np.array(iteration, dtype=np.int64)
    if rng is not None:
        arrays["meta/rng_state"] = _encode_rng_state(rng)
    if optimizer is not None:
        snap = optimizer.state_dict()
        arrays["meta/step_count"] = np.array(snap["step_count"], dtype=np.int64)
        for i, st in enumerate(snap["state"]):
            for key, val in st.items():
                arrays[f"opt/{i}/{key}"] = np.asarray(val)

    # write-then-rename: readers either see the old complete checkpoint or
    # the new complete one, never a torn write
    final = os.fspath(path)
    if not final.endswith(".npz"):  # np.savez's extension convention
        final += ".npz"
    tmp = final + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_checkpoint(
    path: str | os.PathLike,
    model: Module,
    optimizer: Optimizer | None = None,
    rng: np.random.Generator | None = None,
) -> int:
    """Restore state saved by :func:`save_checkpoint`; returns the saved
    iteration counter.  Parameter names/shapes must match the model.

    Passing ``rng`` restores the saved ``meta/rng_state`` into it in place
    (raises ``KeyError`` if the checkpoint carries none).
    """
    with np.load(os.fspath(path), allow_pickle=False) as data:
        params = {
            key[len("param/"):]: data[key]
            for key in data.files
            if key.startswith("param/")
        }
        model.load_state_dict(params)
        iteration = int(data["meta/iteration"])
        if rng is not None:
            if "meta/rng_state" not in data.files:
                raise KeyError("checkpoint has no RNG state")
            rng.bit_generator.state = _decode_rng_state(data["meta/rng_state"])
        if optimizer is not None:
            if "meta/step_count" not in data.files:
                raise KeyError("checkpoint has no optimiser state")
            state: list[dict] = [dict() for _ in optimizer.params]
            for key in data.files:
                if not key.startswith("opt/"):
                    continue
                _, idx, name = key.split("/", 2)
                arr = data[key]
                state[int(idx)][name] = (
                    int(arr) if arr.ndim == 0 and name == "t" else arr.copy()
                )
            optimizer.load_state_dict(
                {"step_count": int(data["meta/step_count"]), "state": state}
            )
    return iteration


def load_rng_state(path: str | os.PathLike) -> np.random.Generator | None:
    """Reconstruct the generator whose state a checkpoint carries
    (``None`` if it has no ``meta/rng_state``)."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        if "meta/rng_state" not in data.files:
            return None
        state = _decode_rng_state(data["meta/rng_state"])
    bitgen = getattr(np.random, state["bit_generator"])()
    bitgen.state = state
    return np.random.Generator(bitgen)
