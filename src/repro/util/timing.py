"""Profiling helpers, following the optimisation-workflow guidance:
measure first, then optimise.

:class:`Timer` is a context-manager stopwatch with accumulation;
:class:`LayerProfiler` wraps a model and records per-layer forward/backward
wall time, producing the table that tells you which layer to vectorise next.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Callable, Sequence

from ..nn.layers.base import Module, Sequential

__all__ = ["Timer", "LayerProfiler", "measure", "median", "median_abs_deviation"]


def median(samples: Sequence[float]) -> float:
    """Median of ``samples`` (robust location; benchmarks report this)."""
    if not samples:
        raise ValueError("median of empty sample set")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def median_abs_deviation(samples: Sequence[float]) -> float:
    """Median absolute deviation from the median (robust spread).

    Unlike the standard deviation, a single scheduler hiccup in one timed
    run barely moves the MAD — which is why the benchmark harness reports
    median ± MAD rather than mean ± std.
    """
    m = median(samples)
    return median(tuple(abs(s - m) for s in samples))


def measure(
    fn: Callable[[], object], repeats: int, warmup: int = 0
) -> list[float]:
    """Wall-clock samples of ``fn()``: ``warmup`` untimed runs, then
    ``repeats`` timed ones (``time.perf_counter`` deltas, in seconds)."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


class Timer:
    """Accumulating stopwatch.

    Accumulates in integer nanoseconds (``time.perf_counter_ns``), so long
    profiling sessions never lose short intervals to float absorption —
    summing many ~µs regions into a large float total silently rounds them
    away, integers never do.  ``total`` stays a float-seconds view for
    existing callers.

    >>> t = Timer()
    >>> with t:
    ...     work()
    >>> t.total, t.count, t.mean
    """

    def __init__(self) -> None:
        self.total_ns = 0
        self.count = 0
        self._start: int | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.total_ns += time.perf_counter_ns() - self._start
        self.count += 1
        self._start = None

    @property
    def total(self) -> float:
        """Accumulated seconds (float view of :attr:`total_ns`)."""
        return self.total_ns * 1e-9

    @property
    def mean(self) -> float:
        """Mean seconds per timed region."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulated time and count."""
        self.total_ns = 0
        self.count = 0


class LayerProfiler:
    """Per-layer forward/backward timing for a :class:`Sequential` model.

    Wraps each layer's ``forward``/``backward`` in place; call
    :meth:`report` after running some steps and :meth:`unwrap` to restore.

    When ``tracer`` is given (a :class:`repro.obs.Tracer`), every wrapped
    call additionally emits a ``layer.forward``/``layer.backward`` span, so
    the per-layer table and the Chrome-trace timeline come from one wrapping
    of the model.  Span emission costs one attribute check per call while
    the tracer is disabled.
    """

    def __init__(self, model: Sequential, tracer=None):
        if not isinstance(model, Sequential):
            raise TypeError("LayerProfiler expects a Sequential model")
        self.model = model
        self.tracer = tracer
        self.forward_time: dict[str, Timer] = defaultdict(Timer)
        self.backward_time: dict[str, Timer] = defaultdict(Timer)
        self._originals: list[tuple[Module, object, object]] = []
        self._wrap()

    def _label(self, idx: int, layer: Module) -> str:
        return f"{idx:02d}:{layer.name or type(layer).__name__}"

    def _wrap(self) -> None:
        for idx, layer in enumerate(self.model.layers):
            label = self._label(idx, layer)
            fwd, bwd = layer.forward, layer.backward
            self._originals.append((layer, fwd, bwd))

            def timed_fwd(x, _f=fwd, _l=label):
                tr = self.tracer
                if tr is not None and tr.enabled:
                    with tr.span("layer.forward", layer=_l), self.forward_time[_l]:
                        return _f(x)
                with self.forward_time[_l]:
                    return _f(x)

            def timed_bwd(g, _b=bwd, _l=label):
                tr = self.tracer
                if tr is not None and tr.enabled:
                    with tr.span("layer.backward", layer=_l), self.backward_time[_l]:
                        return _b(g)
                with self.backward_time[_l]:
                    return _b(g)

            layer.forward = timed_fwd
            layer.backward = timed_bwd

    def unwrap(self) -> None:
        """Restore the original methods."""
        for layer, fwd, bwd in self._originals:
            layer.forward = fwd
            layer.backward = bwd
        self._originals.clear()

    def report(self) -> str:
        """Per-layer table sorted by total time, slowest first."""
        rows = []
        for label in self.forward_time:
            f = self.forward_time[label]
            b = self.backward_time.get(label, Timer())
            rows.append((label, f.total, b.total, f.total + b.total))
        rows.sort(key=lambda r: -r[3])
        lines = [f"{'layer':<28}{'fwd_s':>10}{'bwd_s':>10}{'total_s':>10}"]
        for label, ft, bt, tot in rows:
            lines.append(f"{label:<28}{ft:>10.4f}{bt:>10.4f}{tot:>10.4f}")
        total = sum(r[3] for r in rows)
        lines.append(f"{'TOTAL':<28}{'':>10}{'':>10}{total:>10.4f}")
        return "\n".join(lines)

    def hotspot(self) -> str | None:
        """Label of the most expensive layer so far."""
        if not self.forward_time:
            return None
        return max(
            self.forward_time,
            key=lambda l: self.forward_time[l].total
            + self.backward_time.get(l, Timer()).total,
        )
